(* Schedule explorer (lib/sched): deterministic replay, commutativity
   (DPOR-style) pruning, and the seeded ABBA lock-order-inversion bug. *)

open Commlat_runtime
open Commlat_sched
module Obs = Commlat_obs.Obs
module Jsonx = Commlat_obs.Jsonx

let mk_set ?(txns = 3) scheme =
  match Workload.set ~txns ~ops_per_txn:2 ~seed:7 scheme with
  | Ok w -> w
  | Error e -> Alcotest.fail e

let snapshot_text (s : Obs.snapshot) = Jsonx.to_string (Obs.snapshot_to_json s)

(* ---- determinism: same schedule -> byte-identical trace, identical obs
   snapshot, identical final state -- per detector scheme ---- *)

let test_replay_determinism () =
  List.iter
    (fun scheme ->
      let w = mk_set scheme in
      let name = Protect.scheme_name scheme in
      (* record a run, then replay its choices twice *)
      let r0 = Scheduler.run ~schedule:[] w.Workload.make in
      let r1 = Explore.replay ~schedule:r0.Scheduler.choices w.Workload.make in
      let r2 = Explore.replay ~schedule:r0.Scheduler.choices w.Workload.make in
      Alcotest.(check string)
        (name ^ ": trace is byte-identical across replays")
        (Trace.render r1.Scheduler.steps)
        (Trace.render r2.Scheduler.steps);
      Alcotest.(check string)
        (name ^ ": obs snapshot identical across replays")
        (snapshot_text r1.Scheduler.snapshot)
        (snapshot_text r2.Scheduler.snapshot);
      Alcotest.(check bool)
        (name ^ ": final ADT state identical across replays")
        true
        (r1.Scheduler.final_state = r2.Scheduler.final_state);
      Alcotest.(check (list int))
        (name ^ ": replay follows the recorded schedule")
        r1.Scheduler.choices r2.Scheduler.choices)
    [ Protect.Forward_gk; Protect.Abstract_lock; Protect.Global_lock;
      Protect.General_gk ];
  (* the STM baseline needs a traced ADT: union-find *)
  let w =
    match Workload.union_find ~txns:2 ~ops_per_txn:2 ~seed:7 Protect.Stm with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let r0 = Scheduler.run ~schedule:[] w.Workload.make in
  let r1 = Explore.replay ~schedule:r0.Scheduler.choices w.Workload.make in
  let r2 = Explore.replay ~schedule:r0.Scheduler.choices w.Workload.make in
  Alcotest.(check string)
    "stm: trace is byte-identical across replays"
    (Trace.render r1.Scheduler.steps)
    (Trace.render r2.Scheduler.steps);
  Alcotest.(check bool)
    "stm: final ADT state identical across replays" true
    (r1.Scheduler.final_state = r2.Scheduler.final_state)

(* ---- exploration terminates and finds nothing on a correct detector ---- *)

let test_explore_clean () =
  List.iter
    (fun scheme ->
      let w = mk_set scheme in
      let cfg = { Explore.default_config with max_schedules = 400 } in
      let r = Explore.explore ~config:cfg w.Workload.make in
      Alcotest.(check bool)
        (Protect.scheme_name scheme ^ ": no counterexample")
        true (r.Explore.verdict = None))
    [ Protect.Forward_gk; Protect.Abstract_lock ]

(* ---- POR prunes: fewer schedules with pruning, same verdict ---- *)

let test_por_prunes () =
  let cfg = { Explore.default_config with max_schedules = 600 } in
  let w () = mk_set Protect.Forward_gk in
  let rp = Explore.explore ~config:cfg (w ()).Workload.make in
  let rn =
    Explore.explore ~config:{ cfg with Explore.por = false } (w ()).Workload.make
  in
  Alcotest.(check bool)
    "verdicts identical (both clean)" true
    (rp.Explore.verdict = None && rn.Explore.verdict = None);
  Alcotest.(check bool)
    (Fmt.str "POR runs fewer schedules (%d <= %d)" rp.Explore.c.Explore.runs
       rn.Explore.c.Explore.runs)
    true
    (rp.Explore.c.Explore.runs <= rn.Explore.c.Explore.runs);
  Alcotest.(check bool)
    "POR actually pruned branches" true
    (rp.Explore.c.Explore.pruned > 0);
  Alcotest.(check bool)
    "no pruning without POR" true
    (rn.Explore.c.Explore.pruned = 0)

(* ---- contended keys: POR must branch on dependent operations ---- *)

let test_por_contended () =
  (* 2 keys across 3 transactions: add/remove collisions are certain, so
     commutativity pruning cannot collapse the search to one schedule *)
  let w =
    match
      Workload.set ~txns:3 ~ops_per_txn:2 ~keys:2 ~seed:3 Protect.Forward_gk
    with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let cfg = { Explore.default_config with max_schedules = 800 } in
  let rp = Explore.explore ~config:cfg w.Workload.make in
  let rn =
    Explore.explore ~config:{ cfg with Explore.por = false } w.Workload.make
  in
  Alcotest.(check bool)
    "verdicts identical under contention" true
    (rp.Explore.verdict = None && rn.Explore.verdict = None);
  Alcotest.(check bool)
    (Fmt.str "contention forces branching (%d runs)" rp.Explore.c.Explore.runs)
    true
    (rp.Explore.c.Explore.runs > 1);
  Alcotest.(check bool)
    (Fmt.str "still fewer than unpruned (%d <= %d)" rp.Explore.c.Explore.runs
       rn.Explore.c.Explore.runs)
    true
    (rp.Explore.c.Explore.runs <= rn.Explore.c.Explore.runs)

(* ---- delaunay: real cavity transactions under the explorer ---- *)

let test_delaunay_swept () =
  (* every explored interleaving must be serializable AND leave a Delaunay
     mesh (the oracle checks both); seed 17 is a nontrivial exhaustible
     tree, seed 42 collapses to one schedule via commutativity pruning *)
  List.iter
    (fun (seed, scheme, expect_branching) ->
      let w =
        match
          Workload.delaunay ~txns:2 ~points:6 ~seed ~max_pts:24 scheme
        with
        | Ok w -> w
        | Error e -> Alcotest.fail e
      in
      let name = Fmt.str "delaunay s%d %s" seed (Protect.scheme_name scheme) in
      let cfg = { Explore.default_config with max_schedules = 3000 } in
      let r = Explore.explore ~config:cfg w.Workload.make in
      Alcotest.(check bool)
        (name ^ ": no counterexample") true (r.Explore.verdict = None);
      Alcotest.(check bool) (name ^ ": exhausted") true r.Explore.exhausted;
      if expect_branching then
        Alcotest.(check bool)
          (Fmt.str "%s: cavity overlap branches the search (%d runs)" name
             r.Explore.c.Explore.runs)
          true
          (r.Explore.c.Explore.runs > 1))
    [
      (17, Protect.Forward_gk, true);
      (17, Protect.General_gk, true);
      (42, Protect.Forward_gk, false);
      (42, Protect.Abstract_lock, false);
      (42, Protect.Global_lock, false);
    ]

let test_delaunay_disjoint_cavities_pruned () =
  (* seed 42's two transactions refine disjoint cavities: the precise
     triset spec proves every cross-transaction pair independent, so POR
     collapses the sweep to a single schedule *)
  let w =
    match
      Workload.delaunay ~txns:2 ~points:6 ~seed:42 ~max_pts:24
        Protect.Forward_gk
    with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let r = Explore.explore w.Workload.make in
  Alcotest.(check int) "one schedule suffices" 1 r.Explore.c.Explore.runs;
  Alcotest.(check bool)
    (Fmt.str "commutativity pruned the rest (%d)" r.Explore.c.Explore.pruned)
    true
    (r.Explore.c.Explore.pruned > 0)

(* ---- mixed: cross-detector composition under the explorer ---- *)

let test_mixed_swept () =
  List.iter
    (fun scheme ->
      let w =
        match
          Workload.mixed ~txns:3 ~ops_per_txn:2 ~keys:3 ~seed:42 scheme
        with
        | Ok w -> w
        | Error e -> Alcotest.fail e
      in
      let name = Fmt.str "mixed %s" (Protect.scheme_name scheme) in
      let r = Explore.explore w.Workload.make in
      Alcotest.(check bool)
        (name ^ ": no counterexample") true (r.Explore.verdict = None);
      Alcotest.(check bool) (name ^ ": exhausted") true r.Explore.exhausted;
      (* the union spec declares cross-structure operations independent,
         so pruning must fire across member detectors *)
      Alcotest.(check bool)
        (Fmt.str "%s: cross-structure pruning (%d)" name
           r.Explore.c.Explore.pruned)
        true
        (r.Explore.c.Explore.pruned > 0))
    [
      Protect.Forward_gk;
      Protect.General_gk;
      Protect.Abstract_lock;
      Protect.Global_lock;
    ]

let test_mixed_contended_branches () =
  (* seed 3 puts both transactions on the same keys: the search must
     branch, and every explored interleaving must stay serializable
     against the three-model composition *)
  let w =
    match
      Workload.mixed ~txns:2 ~ops_per_txn:2 ~keys:2 ~seed:3 Protect.Forward_gk
    with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let cfg = { Explore.default_config with max_schedules = 150 } in
  let r = Explore.explore ~config:cfg w.Workload.make in
  Alcotest.(check bool) "no counterexample" true (r.Explore.verdict = None);
  Alcotest.(check bool)
    (Fmt.str "contention branches the search (%d runs)" r.Explore.c.Explore.runs)
    true
    (r.Explore.c.Explore.runs > 1)

(* ---- obs counters surface the exploration stats ---- *)

let test_obs_counters () =
  let w = mk_set Protect.Forward_gk in
  let obs = Obs.create ~enabled:true "explore" in
  let cfg = { Explore.default_config with max_schedules = 100 } in
  let r = Explore.explore ~config:cfg ~obs w.Workload.make in
  let snap = Obs.snapshot obs in
  Alcotest.(check int)
    "schedules_run counter matches report" r.Explore.c.Explore.runs
    (Obs.counter_value snap "schedules_run");
  Alcotest.(check int)
    "schedules_pruned counter matches report" r.Explore.c.Explore.pruned
    (Obs.counter_value snap "schedules_pruned")

(* ---- the adaptive hot-swap protocol, swept ---- *)

(* Transactions over one set race a swapper fiber that flips a dispatcher
   between a precise forward gatekeeper and the global lock under the
   server's barrier condition (all guards held, zero open transactions).
   The sweep must (a) find no serializability violation, deadlock or crash
   in any interleaving, and (b) actually execute swaps — a sweep whose
   every swap attempt failed would prove nothing about the protocol. *)
let test_swap_protocol_swept () =
  let swaps = ref 0 in
  let w =
    match
      Workload.swap_set ~txns:2 ~ops_per_txn:2 ~keys:2 ~seed:11
        ~on_swap:(fun () -> incr swaps)
        ()
    with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let cfg = { Explore.default_config with max_schedules = 400 } in
  let r = Explore.explore ~config:cfg w.Workload.make in
  (match r.Explore.verdict with
  | None -> ()
  | Some f ->
      Alcotest.fail
        (Fmt.str "swap protocol produced a %s counterexample: %s@.%s"
           f.Explore.f_kind f.Explore.f_detail f.Explore.f_trace));
  Alcotest.(check bool)
    (Fmt.str "the sweep exercised swaps (%d across %d schedules)" !swaps
       r.Explore.c.Explore.runs)
    true (!swaps > 0);
  Alcotest.(check bool)
    "explored more than one interleaving" true
    (r.Explore.c.Explore.runs > 1)

(* mid-transaction the swapper must hold off: replaying any schedule, a
   flip can only have happened at open = 0, so the committed history stays
   serializable even under the adversarial default policy *)
let test_swap_default_policy () =
  let w =
    match Workload.swap_set ~txns:3 ~ops_per_txn:2 ~keys:2 ~seed:5 () with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let r = Scheduler.run ~schedule:[] w.Workload.make in
  (match r.Scheduler.status with
  | Scheduler.Completed -> ()
  | st -> Alcotest.fail (Fmt.str "%a" Scheduler.pp_status st));
  Alcotest.(check (option string)) "serializable" None r.Scheduler.oracle_failure

(* ---- the seeded ABBA bug: found, shrunk, deterministic, replayable ---- *)

let buggy () = Seeded.workload ~buggy:true ()
let fixed () = Seeded.workload ~buggy:false ()

let test_abba_found () =
  let r = Explore.explore buggy in
  match r.Explore.verdict with
  | None -> Alcotest.fail "seeded ABBA deadlock not found"
  | Some f ->
      Fmt.epr "ABBA shrunk schedule: [%s] (from %d)@."
        (String.concat ";" (List.map string_of_int f.Explore.f_schedule))
        f.Explore.f_shrunk_from;
      Fmt.epr "ABBA trace:@.%s@." f.Explore.f_trace;
      Alcotest.(check string) "kind is deadlock" "deadlock" f.Explore.f_kind;
      (* deterministic: a second exploration finds the same schedule *)
      let r2 = Explore.explore buggy in
      (match r2.Explore.verdict with
      | None -> Alcotest.fail "second exploration missed the deadlock"
      | Some f2 ->
          Alcotest.(check (list int))
            "same shrunk schedule on re-exploration" f.Explore.f_schedule
            f2.Explore.f_schedule);
      (* the shrunk schedule replays to the same failure *)
      let rr = Explore.replay ~schedule:f.Explore.f_schedule buggy in
      (match rr.Scheduler.status with
      | Scheduler.Deadlock _ -> ()
      | st ->
          Alcotest.fail
            (Fmt.str "shrunk schedule replayed to %a, not deadlock"
               Scheduler.pp_status st));
      (* shrinking did not grow the schedule *)
      Alcotest.(check bool)
        "shrunk <= original" true
        (List.length f.Explore.f_schedule <= f.Explore.f_shrunk_from)

let test_abba_fixed_clean () =
  let r = Explore.explore fixed in
  match r.Explore.verdict with
  | None -> ()
  | Some f ->
      Alcotest.fail
        (Fmt.str "canonical lock order produced a %s counterexample: %s@.%s"
           f.Explore.f_kind f.Explore.f_detail f.Explore.f_trace)

(* ---- pinned regression schedule ---- *)

(* tests run either from the dune sandbox (test/) or the workspace root;
   locate the pinned schedule relative to whichever we're in *)
let schedule_file name =
  let rec find dir n =
    if n = 0 then Alcotest.fail ("cannot locate test data file " ^ name)
    else
      let cand = Filename.concat dir (Filename.concat "data" name) in
      let cand' =
        Filename.concat dir (Filename.concat "test/data" name)
      in
      if Sys.file_exists cand then cand
      else if Sys.file_exists cand' then cand'
      else find (Filename.concat dir "..") (n - 1)
  in
  find "." 6

let read_schedule file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> (
            match String.trim line with
            | "" -> go acc
            | l when l.[0] = '#' -> go acc
            | l -> go (int_of_string l :: acc))
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_abba_pinned () =
  let sched = read_schedule (schedule_file "abba.schedule") in
  let r = Explore.replay ~schedule:sched buggy in
  (match r.Scheduler.status with
  | Scheduler.Deadlock _ -> ()
  | st ->
      Alcotest.fail
        (Fmt.str "pinned schedule replayed to %a, not deadlock"
           Scheduler.pp_status st));
  (* the same interleaving is harmless under the canonical lock order *)
  let rf = Explore.replay ~schedule:sched fixed in
  match rf.Scheduler.status with
  | Scheduler.Deadlock _ ->
      Alcotest.fail "fixed detector deadlocked on the pinned schedule"
  | _ -> ()

let suite =
  [
    Alcotest.test_case "replay-determinism" `Quick test_replay_determinism;
    Alcotest.test_case "explore-clean" `Quick test_explore_clean;
    Alcotest.test_case "por-prunes" `Quick test_por_prunes;
    Alcotest.test_case "por-contended" `Quick test_por_contended;
    Alcotest.test_case "delaunay-swept" `Quick test_delaunay_swept;
    Alcotest.test_case "delaunay-disjoint-pruned" `Quick
      test_delaunay_disjoint_cavities_pruned;
    Alcotest.test_case "mixed-swept" `Quick test_mixed_swept;
    Alcotest.test_case "mixed-contended-branches" `Quick
      test_mixed_contended_branches;
    Alcotest.test_case "obs-counters" `Quick test_obs_counters;
    Alcotest.test_case "swap-protocol-swept" `Quick test_swap_protocol_swept;
    Alcotest.test_case "swap-default-policy" `Quick test_swap_default_policy;
    Alcotest.test_case "abba-found" `Quick test_abba_found;
    Alcotest.test_case "abba-fixed-clean" `Quick test_abba_fixed_clean;
    Alcotest.test_case "abba-pinned" `Quick test_abba_pinned;
  ]
