(* Tests of the truly-concurrent domain executor: honest stats, commit-hook
   failure atomicity, guard/deque primitives, and cross-executor
   equivalence — every conflict scheme must produce the same results under
   run_domains at 1, 2 and 8 domains as under run_sequential. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime
module Obs = Commlat_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------- *)
(* Guard: reentrancy and multi-guard ordering                     *)
(* ------------------------------------------------------------- *)

let test_guard_reentrant () =
  let g = Guard.create () in
  let r =
    Guard.protect g (fun () -> Guard.protect g (fun () -> Guard.protect g (fun () -> 42)))
  in
  check_int "nested protect returns" 42 r;
  (* fully released: another domain can take it *)
  let taken = Domain.spawn (fun () -> Guard.protect g (fun () -> true)) in
  check_bool "released after nested exits" true (Domain.join taken)

let test_guard_protect_all_dedups () =
  let g1 = Guard.create () and g2 = Guard.create () in
  (* duplicates and reverse creation order: still acquires, runs, releases *)
  let r = Guard.protect_all [ g2; g1; g2; g1 ] (fun () -> Guard.protect g1 (fun () -> 7)) in
  check_int "protect_all with duplicates" 7 r;
  let taken = Domain.spawn (fun () -> Guard.protect_all [ g1; g2 ] (fun () -> true)) in
  check_bool "all released" true (Domain.join taken)

let test_guard_mutual_exclusion () =
  let g = Guard.create () in
  let counter = ref 0 in
  let bump () =
    for _ = 1 to 5_000 do
      Guard.protect g (fun () -> counter := !counter + 1)
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn bump) in
  bump ();
  List.iter Domain.join ds;
  check_int "4 domains x 5000 guarded increments" 20_000 !counter

(* (The Wsdeque unit tests moved to test_wsdeque.ml when the deque became
   its own library under lib/wsdeque.) *)

(* ------------------------------------------------------------- *)
(* Honest stats (satellite: rounds/makespan/parallelism)          *)
(* ------------------------------------------------------------- *)

let acc_operator acc det (txn : Txn.t) x =
  Accumulator.invoke_increment det acc ~txn:(Txn.id txn) x;
  Txn.push_undo txn (fun () -> Accumulator.increment acc (-x));
  []

let test_domains_stats_honest () =
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Abstract_lock in
  let s =
    Executor.run_domains ~domains:2 ~detector:det
      ~operator:(fun det txn x -> acc_operator acc det txn x)
      (List.init 200 (fun i -> i + 1))
  in
  check_bool "no rounds exist for a domains run" true (s.Executor.rounds = None);
  check_bool "rounds_exn refuses to invent one" true
    (match Executor.rounds_exn s with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "wall clock measured" true (s.Executor.wall_s > 0.0);
  Alcotest.(check (float 1e-9)) "makespan is the wall clock" s.Executor.wall_s
    s.Executor.makespan;
  check_bool "total_work = busy seconds, not a commit count" true
    (s.Executor.total_work > 0.0
    && s.Executor.total_work <> float_of_int (s.Executor.committed + s.Executor.aborted));
  let p = Executor.parallelism s in
  check_bool "effective parallelism in (0, domains]" true (p > 0.0 && p <= 2.0 +. 1e-6);
  let rendered = Fmt.str "%a" Executor.pp_stats s in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "pp_stats prints rounds=-" true (contains rendered "rounds=-")

(* ------------------------------------------------------------- *)
(* Commit-hook failure (satellite: stats counted after commit)    *)
(* ------------------------------------------------------------- *)

exception Hook_boom

let test_commit_hook_failure_is_atomic () =
  (* a hook that raises on the 5th commit: the 5th transaction must be
     rolled back, stats and obs must agree on 4 commits (the old executor
     counted the commit BEFORE running the hook) *)
  let obs = Obs.create ~enabled:true "hook" in
  let acc = Accumulator.create () in
  let inner = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Abstract_lock in
  let commits = ref 0 in
  let det =
    {
      inner with
      Detector.name = "poisoned-commit";
      on_commit =
        (fun txn ->
          inner.Detector.on_commit txn;
          incr commits;
          if !commits = 5 then raise Hook_boom);
    }
  in
  (match
     Executor.run_domains ~domains:1 ~obs ~detector:det
       ~operator:(fun det txn x -> acc_operator acc det txn x)
       (List.init 10 (fun i -> i + 1))
   with
  | _ -> Alcotest.fail "commit-hook exception must re-raise from run_domains"
  | exception Hook_boom -> ());
  check_int "poisoned transaction rolled back" 10 (Accumulator.read acc);
  let snap = Obs.snapshot obs in
  check_int "obs committed counts only completed commits" 4
    (Obs.counter_value snap "committed")

(* ------------------------------------------------------------- *)
(* Cross-executor equivalence                                     *)
(* ------------------------------------------------------------- *)

let domain_counts = [ 1; 2; 8 ]

(* Add-only contended set workload: set union is confluent, so every
   serializable execution ends in the same state. *)
let set_items = List.init 120 (fun i -> i mod 12)

let set_operator set det (txn : Txn.t) (v : int) =
  let exec (inv : Invocation.t) = Iset.exec set "add" inv.Invocation.args in
  ignore (Boost.invoke det txn ~undo:(Iset.undo set) Iset.m_add [| Value.Int v |] exec);
  []

let sorted_elements set = List.sort compare (Iset.elements set)

let set_detectors : (string * (Iset.t -> Detector.t)) list =
  [
    ( "global-lock",
      fun _ ->
        Protect.protect ~spec:(Iset.exclusive_spec ()) ~adt:(Protect.adt ())
          Protect.Global_lock );
    ( "abslock-excl",
      fun _ ->
        Protect.protect ~spec:(Iset.exclusive_spec ()) ~adt:(Protect.adt ())
          Protect.Abstract_lock );
    ( "abslock-rw",
      fun _ ->
        Protect.protect ~spec:(Iset.simple_spec ()) ~adt:(Protect.adt ())
          Protect.Abstract_lock );
    ( "fwd-gk",
      fun set ->
        Protect.protect ~spec:(Iset.precise_spec ())
          ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
          Protect.Forward_gk );
    (* footprint-sharded/striped variants must report exactly the same
       conflicts as their unsharded counterparts *)
    ( "fwd-gk-sharded",
      fun set ->
        Protect.protect ~spec:(Iset.precise_spec ())
          ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
          (Protect.Sharded (Protect.Forward_gk, 8)) );
    ( "abslock-rw-striped",
      fun _ ->
        Protect.protect ~spec:(Iset.simple_spec ()) ~adt:(Protect.adt ())
          (Protect.Sharded (Protect.Abstract_lock, 8)) );
    (* [Protect.protect] compiles conditions by default; the explicit
       [~compiled:false] interpreter variants must be
       conflict-for-conflict identical (the spec compiler's contract),
       so the matrix keeps running both evaluation paths *)
    ( "fwd-gk-interp",
      fun set ->
        Protect.protect ~compiled:false ~spec:(Iset.precise_spec ())
          ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
          Protect.Forward_gk );
    ( "fwd-gk-sharded-interp",
      fun set ->
        Protect.protect ~compiled:false ~spec:(Iset.precise_spec ())
          ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
          (Protect.Sharded (Protect.Forward_gk, 8)) );
    ( "abslock-rw-striped-interp",
      fun _ ->
        Protect.protect ~compiled:false ~spec:(Iset.simple_spec ())
          ~adt:(Protect.adt ())
          (Protect.Sharded (Protect.Abstract_lock, 8)) );
  ]

(* Multi-op transactions on a kvmap, overlapping key ranges plus a keyless
   [size] call per transaction: exercises the striped gatekeeper's keyed
   shards, the overflow shard (size has no footprint key) and real
   conflicts/retries at every domain count.  The final map must equal the
   one a sequential run produces (last-writer-wins is confluent here
   because every transaction writes its own value only to keys it owns
   modulo the overlap set, and the reference is recomputed per run). *)
let kvmap_txn m det (txn : Txn.t) (i : int) =
  for j = 0 to 7 do
    (* key blocks overlap by half; the value is a function of the key, so
       overlapping puts write the same binding and the final map is the
       same under every serialization *)
    let k = (i * 4) + j in
    ignore
      (Boost.invoke det txn ~undo:(Kvmap.undo m) Kvmap.m_put
         [| Value.Int k; Value.Int ((2 * k) + 1) |]
         (fun (inv : Invocation.t) -> Kvmap.exec m "put" inv.Invocation.args))
  done;
  (* keyless method: lands in the overflow shard and conflicts with
     concurrent puts, exercising retries through the striped path *)
  ignore
    (Boost.invoke_ro det txn Kvmap.m_size [||] (fun (inv : Invocation.t) ->
         Kvmap.exec m "size" inv.Invocation.args));
  []

let test_sharded_kvmap_equivalence () =
  let mk sharded m =
    Protect.protect ~spec:(Kvmap.precise_spec ())
      ~adt:(Protect.adt ~hooks:(Kvmap.hooks m) ())
      (if sharded then Protect.Sharded (Protect.Forward_gk, 8)
       else Protect.Forward_gk)
  in
  let items = List.init 40 Fun.id in
  let run_seq () =
    let m = Kvmap.create () in
    let det = mk false m in
    ignore
      (Executor.run_sequential ~detector:det
         ~operator:(fun txn i -> kvmap_txn m det txn i)
         items);
    List.sort compare (Kvmap.bindings m)
  in
  let reference = run_seq () in
  List.iter
    (fun d ->
      List.iter
        (fun sharded ->
          let m = Kvmap.create () in
          let det = mk sharded m in
          let s =
            Executor.run_domains ~domains:d ~detector:det
              ~operator:(fun det txn i -> kvmap_txn m det txn i)
              items
          in
          check_int
            (Fmt.str "kvmap %s @ %d domains: all txns committed"
               (if sharded then "sharded" else "unsharded")
               d)
            (List.length items) s.Executor.committed;
          check_bool
            (Fmt.str "kvmap %s @ %d domains: same final bindings"
               (if sharded then "sharded" else "unsharded")
               d)
            true
            (List.sort compare (Kvmap.bindings m) = reference))
        [ false; true ])
    domain_counts

let test_set_equivalence () =
  List.iter
    (fun (name, mk) ->
      let ref_set = Iset.create () in
      let ref_det = mk ref_set in
      let ref_stats =
        Executor.run_sequential ~detector:ref_det
          ~operator:(set_operator ref_set ref_det) set_items
      in
      check_int (name ^ ": sequential commits every item") (List.length set_items)
        ref_stats.Executor.committed;
      let reference = sorted_elements ref_set in
      List.iter
        (fun d ->
          let set = Iset.create () in
          let det = mk set in
          let s =
            Executor.run_domains ~domains:d ~detector:det
              ~operator:(fun det txn v -> set_operator set det txn v)
              set_items
          in
          check_int
            (Fmt.str "%s @ %d domains: same committed multiset" name d)
            (List.length set_items) s.Executor.committed;
          check_bool
            (Fmt.str "%s @ %d domains: same final ADT state" name d)
            true
            (sorted_elements set = reference))
        domain_counts)
    set_detectors

let test_boruvka_equivalence () =
  (* general gatekeeper end-to-end: undo/redo sweeps, composed detectors,
     app-level locks — MST weight must match Kruskal and the sequential
     executor at every domain count *)
  let open Commlat_apps in
  let mesh = Mesh.generate ~rows:8 ~cols:8 () in
  let expected = Reference.mst_weight ~n:mesh.Mesh.nodes mesh.Mesh.edges in
  let run_seq () =
    let t = Boruvka.create ~mesh () in
    let det =
      Protect.protect ~spec:(Union_find.spec ())
        ~adt:(Protect.adt ~hooks:(Union_find.hooks t.Boruvka.uf) ())
        Protect.General_gk
    in
    ignore
      (Executor.run_sequential
         ~detector:(Boruvka.full_detector t det)
         ~operator:(Boruvka.operator t det)
         (List.init mesh.Mesh.nodes Fun.id));
    Boruvka.mst_weight t.Boruvka.mst
  in
  check_int "sequential = kruskal" expected (run_seq ());
  List.iter
    (fun d ->
      let t = Boruvka.create ~mesh () in
      let det =
        Protect.protect ~spec:(Union_find.spec ())
          ~adt:(Protect.adt ~hooks:(Union_find.hooks t.Boruvka.uf) ())
          Protect.General_gk
      in
      ignore
        (Executor.run_domains ~domains:d
           ~detector:(Boruvka.full_detector t det)
           ~operator:(fun _wrapped txn item -> Boruvka.operator t det txn item)
           (List.init mesh.Mesh.nodes Fun.id));
      check_int
        (Fmt.str "gen-gk boruvka @ %d domains = kruskal" d)
        expected
        (Boruvka.mst_weight t.Boruvka.mst))
    domain_counts

let test_stm_equivalence () =
  (* one traced cell, commutative increments: memory-level detection makes
     every concurrent pair conflict, hammering the abort/retry path *)
  let run d =
    let tr = ref Mem_trace.null in
    let stm_det =
      Protect.protect
        ~spec:(Iset.exclusive_spec ())
        ~adt:(Protect.adt ~connect_tracer:(fun t -> tr := t) ())
        Protect.Stm
    in
    let tracer = !tr in
    let cell = ref 0 in
    let meth = Invocation.meth "op" 0 in
    let operator _det (txn : Txn.t) (x : int) =
      Txn.push_undo txn (fun () -> cell := !cell - x);
      let inv = Invocation.make ~txn:(Txn.id txn) meth [||] in
      ignore
        (stm_det.Detector.on_invoke inv (fun () ->
             tracer.Mem_trace.read 0;
             let v = !cell in
             tracer.Mem_trace.write 0;
             cell := v + x;
             Value.Unit));
      []
    in
    let s =
      Executor.run_domains ~domains:d ~detector:stm_det ~operator
        (List.init 60 (fun i -> i + 1))
    in
    (s.Executor.committed, !cell)
  in
  List.iter
    (fun d ->
      let committed, total = run d in
      check_int (Fmt.str "stm @ %d domains: every item commits" d) 60 committed;
      check_int (Fmt.str "stm @ %d domains: sum exact" d) (60 * 61 / 2) total)
    domain_counts

let test_stress_retries_and_stealing () =
  (* 8 domains, a global lock (maximum contention), and operator-generated
     children: exercises retry-at-front, stealing from sibling deques and
     the pending-counter termination protocol in one run.  Items are
     (depth, value) chains; every link increments once. *)
  let acc = Accumulator.create () in
  let det =
    Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ())
      Protect.Global_lock
  in
  let depth = 5 in
  let roots = List.init 16 (fun i -> (depth, i + 1)) in
  let operator det (txn : Txn.t) (d, v) =
    Accumulator.invoke_increment det acc ~txn:(Txn.id txn) v;
    Txn.push_undo txn (fun () -> Accumulator.increment acc (-v));
    if d > 0 then [ (d - 1, v) ] else []
  in
  let obs = Obs.create ~enabled:true "stress" in
  let s = Executor.run_domains ~domains:8 ~obs ~detector:det ~operator roots in
  let expected_commits = 16 * (depth + 1) in
  check_int "every chain link committed" expected_commits s.Executor.committed;
  check_int "sum exact despite aborts"
    (List.fold_left (fun a (_, v) -> a + (v * (depth + 1))) 0 roots)
    (Accumulator.read acc);
  (* aborts are scheduling-dependent (a single-core machine may serialize
     the whole run); only their accounting is checked, not their count *)
  check_bool "abort count non-negative" true (s.Executor.aborted >= 0)

(* ------------------------------------------------------------- *)
(* Mid-run detector swap (adaptive hot-swap, executor level)      *)
(* ------------------------------------------------------------- *)

(* The server's adaptive controller replaces an ADT's detector at a
   quiescent point (every transaction committed).  The executor-level
   equivalent: run half the workload under scheme A, let run_domains
   quiesce, hand the SAME ADT to a detector built from scheme B, run the
   rest — for every ordered scheme pair that can protect the ADT, at 1, 2
   and 8 domains.  Since set union is confluent, any sound pair of
   detectors must land on exactly the sequential final state; a detector
   whose conflict decisions leak across the swap (stale active tables,
   locks surviving the handoff) shows up as lost or duplicated effects. *)

let swap_schemes : (string * (Iset.t -> Detector.t)) list =
  [
    ( "global-lock",
      fun _ ->
        Protect.protect ~spec:(Iset.exclusive_spec ()) ~adt:(Protect.adt ())
          Protect.Global_lock );
    ( "abslock",
      fun _ ->
        Protect.protect ~spec:(Iset.simple_spec ()) ~adt:(Protect.adt ())
          Protect.Abstract_lock );
    ( "fwd-gk",
      fun set ->
        Protect.protect ~spec:(Iset.precise_spec ())
          ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
          Protect.Forward_gk );
    ( "fwd-gk-sharded",
      fun set ->
        Protect.protect ~spec:(Iset.precise_spec ())
          ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
          (Protect.Sharded (Protect.Forward_gk, 8)) );
  ]

let test_mid_run_swap_equivalence () =
  let reference =
    let set = Iset.create () in
    let det = (List.assoc "fwd-gk" swap_schemes) set in
    ignore
      (Executor.run_sequential ~detector:det ~operator:(set_operator set det)
         set_items);
    sorted_elements set
  in
  let half = List.length set_items / 2 in
  let first = List.filteri (fun i _ -> i < half) set_items in
  let second = List.filteri (fun i _ -> i >= half) set_items in
  List.iter
    (fun d ->
      List.iter
        (fun (na, mka) ->
          List.iter
            (fun (nb, mkb) ->
              let set = Iset.create () in
              let det_a = mka set in
              let s1 =
                Executor.run_domains ~domains:d ~detector:det_a
                  ~operator:(fun det txn v -> set_operator set det txn v)
                  first
              in
              (* run_domains has quiesced: zero open transactions — the
                 same precondition the server's swap barrier establishes *)
              let det_b = mkb set in
              let s2 =
                Executor.run_domains ~domains:d ~detector:det_b
                  ~operator:(fun det txn v -> set_operator set det txn v)
                  second
              in
              check_int
                (Fmt.str "%s->%s @ %d domains: all committed" na nb d)
                (List.length set_items)
                (s1.Executor.committed + s2.Executor.committed);
              check_bool
                (Fmt.str "%s->%s @ %d domains: final state = sequential" na nb
                   d)
                true
                (sorted_elements set = reference))
            swap_schemes)
        swap_schemes)
    domain_counts

(* Same protocol for the GENERAL end of the lattice: union-find under the
   general gatekeeper, swapped mid-run to the STM baseline (and back),
   sharing one structure.  The union set is fixed, so the final partition
   must match a plain sequential fold whatever the detector or order. *)
let test_mid_run_swap_uf_gen_gk_stm () =
  let elements = 16 in
  let unions = List.init 24 (fun i -> (i mod elements, ((i * 7) + 3) mod elements)) in
  let same_set_matrix same_set =
    List.concat_map
      (fun a -> List.map (fun b -> same_set a b) (List.init elements Fun.id))
      (List.init elements Fun.id)
  in
  let reference =
    let uf = Union_find.create () in
    ignore (Union_find.create_elements uf elements);
    List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) unions;
    same_set_matrix (Union_find.same_set uf)
  in
  let mk_gen uf =
    Protect.protect ~spec:(Union_find.spec ())
      ~adt:
        (Protect.adt ~hooks:(Union_find.hooks uf)
           ~connect_tracer:(Union_find.set_tracer uf) ())
      Protect.General_gk
  in
  let mk_stm uf =
    Protect.protect ~spec:(Union_find.spec ())
      ~adt:
        (Protect.adt ~hooks:(Union_find.hooks uf)
           ~connect_tracer:(Union_find.set_tracer uf) ())
      Protect.Stm
  in
  let operator uf det (txn : Txn.t) (a, b) =
    ignore
      (Boost.invoke det txn ~undo:(Union_find.undo uf) Union_find.m_union
         [| Value.Int a; Value.Int b |]
         (fun inv -> Union_find.exec_logged uf inv));
    []
  in
  let half = List.length unions / 2 in
  let first = List.filteri (fun i _ -> i < half) unions in
  let second = List.filteri (fun i _ -> i >= half) unions in
  List.iter
    (fun d ->
      List.iter
        (fun (name, mk1, mk2) ->
          let uf = Union_find.create () in
          ignore (Union_find.create_elements uf elements);
          let det1 = mk1 uf in
          let s1 =
            Executor.run_domains ~domains:d ~detector:det1
              ~operator:(fun det txn u -> operator uf det txn u)
              first
          in
          let det2 = mk2 uf in
          let s2 =
            Executor.run_domains ~domains:d ~detector:det2
              ~operator:(fun det txn u -> operator uf det txn u)
              second
          in
          check_int
            (Fmt.str "%s @ %d domains: all unions committed" name d)
            (List.length unions)
            (s1.Executor.committed + s2.Executor.committed);
          check_bool
            (Fmt.str "%s @ %d domains: partition = sequential" name d)
            true
            (same_set_matrix (Union_find.same_set uf) = reference))
        [
          ("gen-gk->stm", mk_gen, mk_stm);
          ("stm->gen-gk", mk_stm, mk_gen);
        ])
    domain_counts

(* ------------------------------------------------------------- *)
(* Orset presence-log regressions (per-instance undo log)         *)
(* ------------------------------------------------------------- *)

(* Two instances, one invocation uid: the old module-global log let
   instance B's pre-state clobber instance A's entry, so A's undo
   restored the wrong state.  Per-instance logs keep them independent,
   and an undo on an instance that never executed the invocation is a
   no-op. *)
let test_orset_two_instances_colliding_uid () =
  let a = Orset.create () and b = Orset.create () in
  let e = Value.Str "x" and i = Value.Int 1 in
  Orset.add a e i;
  (* pair present in A, absent in B *)
  let inv = Invocation.make ~txn:1 Orset.m_add [| e; i |] in
  ignore (Orset.exec_logged a inv);
  (* same uid, same args, different instance — the collision *)
  ignore (Orset.exec_logged b inv);
  Orset.undo b inv;
  check_bool "B's undo removes its own speculative add" false (Orset.mem b e i);
  Orset.undo a inv;
  check_bool "A's undo sees A's pre-state (present), not B's" true
    (Orset.mem a e i);
  check_int "both logs drained by undo" 0 (Orset.log_size a + Orset.log_size b);
  (* undoing an invocation that never executed on this instance: no-op *)
  let ghost = Invocation.make ~txn:2 Orset.m_add [| e; i |] in
  Orset.undo a ghost;
  check_bool "ghost undo does not corrupt state" true (Orset.mem a e i)

(* Commit must drop presence-log entries too (the gatekeeper's forget
   hook), not just undo: a long-running server would otherwise leak one
   entry per committed add/remove forever.  Checked single-threaded on
   both the coarse and the striped forward gatekeeper... *)
let test_orset_log_forgotten_on_commit () =
  List.iter
    (fun scheme ->
      let os = Orset.create () in
      let det =
        Protect.protect ~spec:(Orset.spec ())
          ~adt:(Protect.adt ~hooks:(Orset.hooks os) ())
          scheme
      in
      for i = 0 to 49 do
        let txn = Txn.fresh () in
        ignore
          (Boost.invoke det txn ~undo:(Orset.undo os) Orset.m_add
             [| Value.Int (i mod 5); Value.Int i |]
             (fun inv -> Orset.exec_logged os inv));
        det.Detector.on_commit (Txn.id txn);
        Txn.commit txn
      done;
      check_int
        (Fmt.str "log empty after 50 commits (%s)" det.Detector.name)
        0 (Orset.log_size os))
    [ Protect.Forward_gk; Protect.Sharded (Protect.Forward_gk, 8) ]

(* ... and under real parallelism: a run_domains stress over both orset
   methods must quiesce with an empty log at every domain count. *)
let test_orset_log_leak_free_under_domains () =
  List.iter
    (fun d ->
      let os = Orset.create () in
      let det =
        Protect.protect ~spec:(Orset.spec ())
          ~adt:(Protect.adt ~hooks:(Orset.hooks os) ())
          (Protect.Sharded (Protect.Forward_gk, 8))
      in
      let items = List.init 400 (fun i -> i) in
      let operator _det txn i =
        let e = Value.Int (i mod 13) and tag = Value.Int i in
        ignore
          (Boost.invoke det txn ~undo:(Orset.undo os) Orset.m_add [| e; tag |]
             (fun inv -> Orset.exec_logged os inv));
        if i mod 3 = 0 then
          ignore
            (Boost.invoke det txn ~undo:(Orset.undo os) Orset.m_remove
               [| e; tag |] (fun inv -> Orset.exec_logged os inv));
        []
      in
      let s = Executor.run_domains ~domains:d ~detector:det ~operator items in
      check_int
        (Fmt.str "all items committed @ %d domains" d)
        (List.length items) s.Executor.committed;
      check_int
        (Fmt.str "presence log drained after quiesce @ %d domains" d)
        0 (Orset.log_size os))
    [ 1; 2; 8 ]

let suite =
  [
    Alcotest.test_case "guard: reentrant" `Quick test_guard_reentrant;
    Alcotest.test_case "guard: protect_all dedups and orders" `Quick
      test_guard_protect_all_dedups;
    Alcotest.test_case "guard: mutual exclusion across domains" `Quick
      test_guard_mutual_exclusion;
    Alcotest.test_case "domains: honest stats" `Quick test_domains_stats_honest;
    Alcotest.test_case "domains: raising commit hook is atomic" `Quick
      test_commit_hook_failure_is_atomic;
    Alcotest.test_case "equivalence: set schemes x {1,2,8} domains" `Slow
      test_set_equivalence;
    Alcotest.test_case "equivalence: sharded kvmap (keyed + overflow) x {1,2,8}"
      `Slow test_sharded_kvmap_equivalence;
    Alcotest.test_case "equivalence: boruvka general gatekeeper" `Slow
      test_boruvka_equivalence;
    Alcotest.test_case "equivalence: stm" `Slow test_stm_equivalence;
    Alcotest.test_case "stress: retries, stealing, termination" `Slow
      test_stress_retries_and_stealing;
    Alcotest.test_case "swap: scheme pairs mid-run x {1,2,8} domains" `Slow
      test_mid_run_swap_equivalence;
    Alcotest.test_case "swap: gen-gk <-> stm mid-run x {1,2,8} domains" `Slow
      test_mid_run_swap_uf_gen_gk_stm;
    Alcotest.test_case "orset: per-instance logs survive colliding uids" `Quick
      test_orset_two_instances_colliding_uid;
    Alcotest.test_case "orset: commit forgets log entries" `Quick
      test_orset_log_forgotten_on_commit;
    Alcotest.test_case "orset: leak-free under run_domains x {1,2,8}" `Slow
      test_orset_log_leak_free_under_domains;
  ]
