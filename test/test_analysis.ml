(* Tests of the static-analysis pass behind `commlat lint`: bounded
   soundness/completeness against the reference ADT semantics, the
   structural lint catalogue, and strengthening-chain validation. *)

open Commlat_core
open Commlat_analysis

let check_bool = Alcotest.(check bool)

let specs_dir =
  (* tests run from the dune sandbox; locate the example specs relative to
     the workspace root *)
  let rec find dir n =
    if n = 0 then None
    else if Sys.file_exists (Filename.concat dir "examples/specs/set.spec") then Some dir
    else find (Filename.concat dir "..") (n - 1)
  in
  find "." 6

let load dir name =
  match Lint.load_file (Filename.concat dir ("examples/specs/" ^ name)) with
  | Ok src -> src
  | Error d -> Alcotest.failf "cannot load %s: %a" name Diagnostic.pp d

let codes ds = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) ds
let has_code c ds = List.mem c (codes ds)

let errors ds = List.filter Diagnostic.is_error ds

(* substring containment, avoiding extra dependencies *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let parse_src s =
  let spec, rules = Spec_lang.parse_with_rules s in
  { Lint.src_file = None; src_spec = spec; src_rules = rules }

(* ---- the shipped good specs are clean ---- *)

let good_specs =
  [ "set.spec"; "set_rw.spec"; "accumulator.spec"; "kvmap.spec";
    "union_find.spec"; "kdtree.spec" ]

let test_good_specs_error_free () =
  match specs_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
      List.iter
        (fun name ->
          let ds = Lint.analyze (load dir name) in
          match errors ds with
          | [] -> ()
          | e :: _ ->
              Alcotest.failf "%s should lint clean but got: %a" name
                Diagnostic.pp e)
        good_specs

let test_builtin_specs_error_free () =
  (* programmatic entry point on in-memory specs *)
  List.iter
    (fun spec ->
      let ds = Lint.analyze_spec spec in
      match errors ds with
      | [] -> ()
      | e :: _ ->
          Alcotest.failf "built-in %s should lint clean but got: %a"
            (Spec.adt spec) Diagnostic.pp e)
    [
      Commlat_adts.Iset.precise_spec ();
      Commlat_adts.Accumulator.spec ();
      Commlat_adts.Kvmap.precise_spec ();
      Commlat_adts.Union_find.spec ();
    ]

(* ---- bounded soundness: the seeded bad corpus is refuted ---- *)

let test_unsound_set () =
  match specs_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
      let ds = Lint.analyze (load dir "bad/set_unsound.spec") in
      let unsound =
        List.filter (fun (d : Diagnostic.t) -> d.Diagnostic.code = "unsound") ds
      in
      check_bool "at least the add/add and remove/contains rules are refuted"
        true
        (List.length unsound >= 2);
      List.iter
        (fun (d : Diagnostic.t) ->
          check_bool "unsound findings are errors" true (Diagnostic.is_error d);
          (* the counterexample trace shows both invocation orders and the
             distinguishing observation *)
          check_bool "trace shows the forward order" true
            (contains d.Diagnostic.msg "forward:");
          check_bool "trace shows the swapped order" true
            (contains d.Diagnostic.msg "swapped:");
          check_bool "trace names the distinguishing observation" true
            (contains d.Diagnostic.msg "differs");
          check_bool "diagnostic carries a source position" true
            (d.Diagnostic.pos <> None))
        unsound;
      (* add;add from the empty set: first add returns true, second false *)
      check_bool "add/add counterexample mentions the flipped returns" true
        (List.exists
           (fun (d : Diagnostic.t) ->
             d.Diagnostic.pair = Some ("add", "add")
             && contains d.Diagnostic.msg "add(0) = true"
             && contains d.Diagnostic.msg "add(0) = false")
           unsound)

let test_unsound_accumulator () =
  match specs_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
      let ds = Lint.analyze (load dir "bad/accumulator_unsound.spec") in
      check_bool "increment;read 'always' is refuted" true
        (List.exists
           (fun (d : Diagnostic.t) ->
             d.Diagnostic.code = "unsound"
             && d.Diagnostic.pair = Some ("increment", "read"))
           ds);
      (* increment returns unit, so `r1 = r2` on increment;increment is
         vacuous — flagged by the unit-return lint *)
      check_bool "unit-return lint fires" true (has_code "unit-return" ds);
      check_bool "unit-return is a warning, not an error" true
        (List.for_all
           (fun (d : Diagnostic.t) ->
             d.Diagnostic.code <> "unit-return" || d.Diagnostic.sev = Diagnostic.Warning)
           ds)

(* ---- structural lint catalogue ---- *)

let test_structural_lints () =
  match specs_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
      let ds = Lint.analyze (load dir "bad/set_lints.spec") in
      check_bool "set_lints.spec has no soundness errors" true (errors ds = []);
      check_bool "dead disjunct detected" true (has_code "dead-disjunct" ds);
      check_bool "misclassification detected" true (has_code "misclassification" ds);
      check_bool "asymmetric directed coverage detected" true
        (has_code "asymmetric-coverage" ds);
      (* positions point at the offending rule lines *)
      let find code pair =
        List.find
          (fun (d : Diagnostic.t) ->
            d.Diagnostic.code = code && d.Diagnostic.pair = Some pair)
          ds
      in
      (match (find "dead-disjunct" ("add", "add")).Diagnostic.pos with
      | Some p -> Alcotest.(check int) "dead-disjunct line" 7 p.Spec_lang.line
      | None -> Alcotest.fail "dead-disjunct has no position");
      (match (find "misclassification" ("add", "remove")).Diagnostic.pos with
      | Some p -> Alcotest.(check int) "misclassification line" 12 p.Spec_lang.line
      | None -> Alcotest.fail "misclassification has no position")

let test_superfluous_modes () =
  match specs_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
      (* set_rw is SIMPLE with a 3-mode scheme whose reduction (Fig. 8a->8b)
         drops modes; the lint re-derives that as warnings *)
      let ds = Lint.analyze (load dir "set_rw.spec") in
      check_bool "superfluous lock modes reported on set_rw" true
        (has_code "superfluous-mode" ds);
      check_bool "superfluous-mode is a warning" true
        (List.for_all
           (fun (d : Diagnostic.t) ->
             d.Diagnostic.code <> "superfluous-mode"
             || d.Diagnostic.sev = Diagnostic.Warning)
           ds)

let test_incomplete_lattice_position () =
  match specs_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
      (* set_rw strengthens the precise set spec, so some observably
         commuting scenarios are rejected: reported as lattice position
         (info), never as an error *)
      let ds = Lint.analyze (load dir "set_rw.spec") in
      let inc =
        List.filter (fun (d : Diagnostic.t) -> d.Diagnostic.code = "incomplete") ds
      in
      check_bool "set_rw sits strictly below the precise condition" true
        (inc <> []);
      List.iter
        (fun (d : Diagnostic.t) ->
          check_bool "incomplete is informational" true
            (d.Diagnostic.sev = Diagnostic.Info))
        inc

let test_unit_return_inline () =
  (* crafted inline spec: referencing r2 of a void method *)
  let src =
    parse_src
      "spec accumulator\n\
       methods increment/1 mut, read/0\n\
       increment ; increment commute if r2 = r2\n\
       increment ; read commute never\n\
       read ; read commute always"
  in
  let ds = Lint.analyze src in
  check_bool "unit-return fires on crafted inline spec" true
    (has_code "unit-return" ds)

(* ---- bounded soundness, programmatic API ---- *)

let test_check_spec_structure () =
  let dom =
    match Domain.find "set" with
    | Some d -> d
    | None -> Alcotest.fail "no reference domain registered for set"
  in
  let reports = Soundness.check_spec dom (Commlat_adts.Iset.precise_spec ()) in
  check_bool "one report per spec pair" true
    (List.length reports
     = List.length (Spec.pairs (Commlat_adts.Iset.precise_spec ())));
  List.iter
    (fun (r : Soundness.pair_report) ->
      check_bool "precise spec has no counterexamples" true
        (r.Soundness.pr_unsound = []);
      check_bool "scenarios were actually executed" true
        (r.Soundness.pr_scenarios > 0))
    reports;
  (* the precise spec is complete on the sampled scenarios for add/add *)
  let addadd =
    List.find (fun (r : Soundness.pair_report) -> r.Soundness.pr_pair = ("add", "add")) reports
  in
  Alcotest.(check int) "precise add/add rejects no commuting scenario" 0
    addadd.Soundness.pr_incomplete

let test_check_pair_counterexample () =
  (* claim add;add always commute: check_pair must produce a concrete
     counterexample with distinguishable observations *)
  let dom = Option.get (Domain.find "set") in
  let spec =
    Spec_lang.parse
      "spec set\nmethods add/1 mut, remove/1 mut, contains/1\n\
       add ; add commute always"
  in
  let r = Soundness.check_pair dom spec (("add", "add"), Formula.True) in
  check_bool "counterexamples found" true (r.Soundness.pr_unsound <> []);
  let cx = List.hd r.Soundness.pr_unsound in
  check_bool "forward and swapped observations differ" false
    (Value.equal cx.Soundness.cx_fwd.Soundness.obs_r1
       cx.Soundness.cx_rev.Soundness.obs_r1
    && Value.equal cx.Soundness.cx_fwd.Soundness.obs_r2
         cx.Soundness.cx_rev.Soundness.obs_r2
    && Value.equal cx.Soundness.cx_fwd.Soundness.obs_state
         cx.Soundness.cx_rev.Soundness.obs_state);
  (* the rendered trace names both orders *)
  let s = Soundness.counterexample_to_string cx in
  check_bool "trace shows forward order" true (contains s "forward:");
  check_bool "trace shows swapped order" true (contains s "swapped:")

(* ---- strengthening-chain validation ---- *)

let test_chain_descends () =
  match specs_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
      let chain names = Lint.analyze_chain (List.map (load dir) names) in
      (* set.spec (precise) -> set_rw.spec (strengthening): valid descent *)
      let ok = chain [ "set.spec"; "set_rw.spec" ] in
      check_bool "set -> set_rw descends the lattice" true (errors ok = []);
      check_bool "no broken step reported" false (has_code "chain-broken" ok);
      (* reversed: set_rw -> set ascends, every weakened pair is an error *)
      let broken = chain [ "set_rw.spec"; "set.spec" ] in
      check_bool "set_rw -> set is a broken chain" true
        (has_code "chain-broken" broken);
      check_bool "broken steps are errors" true (errors broken <> [])

let test_chain_programmatic () =
  let envs =
    Domain.sample_envs ?domain:(Domain.find "set")
      (Commlat_adts.Iset.precise_spec ())
  in
  let step label spec = { Chain.label; spec } in
  let ds =
    Chain.validate ~envs
      [
        step "precise" (Commlat_adts.Iset.precise_spec ());
        step "rw" (Commlat_adts.Iset.simple_spec ());
        step "excl" (Commlat_adts.Iset.exclusive_spec ());
      ]
  in
  check_bool "precise -> rw -> exclusive is a valid strengthening chain" true
    (List.filter Diagnostic.is_error ds = [])

(* ---- diagnostics plumbing ---- *)

let test_load_file_errors () =
  (match Lint.load_file "/nonexistent/no.spec" with
  | Ok _ -> Alcotest.fail "expected io error"
  | Error d ->
      check_bool "io error code" true (d.Diagnostic.code = "io");
      check_bool "io errors are errors" true (Diagnostic.is_error d));
  (* a malformed spec surfaces as a positioned parse diagnostic *)
  let tmp = Filename.temp_file "commlat" ".spec" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out tmp in
      output_string oc "spec broken\nmethods m/1 mut\nm ; m commute if v1[0] !!\n";
      close_out oc;
      match Lint.load_file tmp with
      | Ok _ -> Alcotest.fail "expected parse error"
      | Error d ->
          check_bool "parse error code" true (d.Diagnostic.code = "parse");
          check_bool "parse error is positioned" true (d.Diagnostic.pos <> None);
          (match d.Diagnostic.pos with
          | Some p -> Alcotest.(check int) "error on line 3" 3 p.Spec_lang.line
          | None -> ()))

let test_json_roundtrip_escaping () =
  let d =
    Diagnostic.make ~spec:"t" ~sev:Diagnostic.Error ~code:"unsound"
      "line1\nline2 \"quoted\" \\ backslash"
  in
  let j = Diagnostic.to_json d in
  check_bool "newline escaped" true (contains j "line1\\nline2");
  check_bool "quote escaped" true (contains j "\\\"quoted\\\"");
  check_bool "no raw newline in JSON" false (contains j "\n")

let suite =
  [
    Alcotest.test_case "shipped specs lint error-free" `Quick
      test_good_specs_error_free;
    Alcotest.test_case "built-in specs lint error-free" `Quick
      test_builtin_specs_error_free;
    Alcotest.test_case "unsound set spec refuted with trace" `Quick
      test_unsound_set;
    Alcotest.test_case "unsound accumulator spec refuted" `Quick
      test_unsound_accumulator;
    Alcotest.test_case "structural lint catalogue" `Quick test_structural_lints;
    Alcotest.test_case "superfluous lock modes re-derived" `Quick
      test_superfluous_modes;
    Alcotest.test_case "incompleteness reported as lattice position" `Quick
      test_incomplete_lattice_position;
    Alcotest.test_case "unit-return on crafted spec" `Quick
      test_unit_return_inline;
    Alcotest.test_case "check_spec report structure" `Quick
      test_check_spec_structure;
    Alcotest.test_case "check_pair produces concrete counterexample" `Quick
      test_check_pair_counterexample;
    Alcotest.test_case "strengthening chain descends" `Quick test_chain_descends;
    Alcotest.test_case "chain validation, programmatic" `Quick
      test_chain_programmatic;
    Alcotest.test_case "load_file error diagnostics" `Quick test_load_file_errors;
    Alcotest.test_case "JSON escaping" `Quick test_json_roundtrip_escaping;
  ]
