(* Wire-protocol codec properties and the in-process client/server
   conformance suite: everything here runs single-threaded and
   socket-free (pipes only, for the framing-cap tests), so tier-1 stays
   deterministic.  The socket path proper is exercised by the CI serve
   job. *)

open Commlat_core
module Wire = Commlat_server.Wire
module Engine = Commlat_server.Engine
module Histo = Commlat_obs.Histo

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------- *)
(* Generators                                                     *)
(* ------------------------------------------------------------- *)

let value_gen : Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Value.Unit;
            map (fun b -> Value.Bool b) bool;
            map (fun i -> Value.Int i) int;
            (* decode(encode f) preserves the bit pattern, so nan is fair
               game; avoid it anyway to keep Value.equal-based checks
               simple and compare representations instead *)
            map (fun f -> Value.Float f) (float_bound_inclusive 1e12);
            map (fun s -> Value.Str s) (string_size (0 -- 40));
            map
              (fun l -> Value.Point (Array.of_list l))
              (list_size (0 -- 4) (float_bound_inclusive 1e6));
          ]
      in
      if n <= 1 then leaf
      else
        oneof
          [
            leaf;
            map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2));
            map (fun o -> Value.Opt o) (option (self (n / 2)));
            map (fun l -> Value.List l) (list_size (0 -- 4) (self (n / 3)));
          ])

let name_gen = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 12))

let req_gen : Wire.req QCheck2.Gen.t =
  let open QCheck2.Gen in
  let id = 0 -- 1_000_000 in
  oneof
    [
      (let* id = id and* adt = name_gen and* meth = name_gen
       and* args = list_size (0 -- 5) value_gen in
       return (Wire.Invoke { id; adt; meth; args = Array.of_list args }));
      map (fun id -> Wire.Stats id) id;
      map (fun id -> Wire.Quit id) id;
      map (fun id -> Wire.Ping id) id;
    ]

let resp_gen : Wire.resp QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      (let* id = 0 -- 1_000_000 and* v = value_gen in
       return (Wire.Reply (id, v)));
      (let* id = 0 -- 1_000_000 and* m = string_size (0 -- 60) in
       return (Wire.Err (id, m)));
    ]

(* Structural equality via the canonical printers (dodges nan <> nan
   while still catching any bit-level float corruption). *)
let req_repr (r : Wire.req) =
  match r with
  | Wire.Invoke { id; adt; meth; args } ->
      Fmt.str "invoke %d %s %s [%a]" id adt meth
        Fmt.(array ~sep:semi Value.pp)
        args
  | Wire.Stats id -> Fmt.str "stats %d" id
  | Wire.Quit id -> Fmt.str "quit %d" id
  | Wire.Ping id -> Fmt.str "ping %d" id

let resp_repr (r : Wire.resp) =
  match r with
  | Wire.Reply (id, v) -> Fmt.str "reply %d %a" id Value.pp v
  | Wire.Err (id, m) -> Fmt.str "err %d %s" id m

(* ------------------------------------------------------------- *)
(* Codec properties                                               *)
(* ------------------------------------------------------------- *)

let prop_req_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"wire: request encode/decode round-trip"
    req_gen (fun r -> req_repr (Wire.decode_req (Wire.encode_req r)) = req_repr r)

let prop_resp_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"wire: response encode/decode round-trip"
    resp_gen (fun r ->
      resp_repr (Wire.decode_resp (Wire.encode_resp r)) = resp_repr r)

let prop_truncated_rejected =
  QCheck2.Test.make ~count:300
    ~name:"wire: every strict prefix of a request is Malformed" req_gen
    (fun r ->
      let s = Wire.encode_req r in
      let ok = ref true in
      for n = 0 to String.length s - 1 do
        match Wire.decode_req (String.sub s 0 n) with
        | _ -> ok := false
        | exception Wire.Malformed _ -> ()
      done;
      !ok)

let prop_trailing_rejected =
  QCheck2.Test.make ~count:300
    ~name:"wire: trailing bytes after a request are Malformed" req_gen
    (fun r ->
      match Wire.decode_req (Wire.encode_req r ^ "\x00") with
      | _ -> false
      | exception Wire.Malformed _ -> true)

let test_codec_malformed_tags () =
  let m s = match Wire.decode_req s with
    | _ -> false
    | exception Wire.Malformed _ -> true
  in
  check_bool "empty payload" true (m "");
  check_bool "unknown request tag" true (m "\x2a");
  check_bool "bad bool byte" true
    (match Wire.decode_resp "\x01\x00\x00\x00\x00\x00\x00\x00\x07\x01\x05" with
    | _ -> false
    | exception Wire.Malformed _ -> true);
  (* a tiny frame declaring a billion-element list must die on the
     cheap length check, not after allocating *)
  let b = Buffer.create 16 in
  Buffer.add_string b "\x01";
  Buffer.add_string b (String.make 8 '\x00') (* id *);
  Buffer.add_string b "\x01k" (* adt "k" *);
  Buffer.add_string b "\x01g" (* meth "g" *);
  Buffer.add_string b "\x01" (* argc 1 *);
  Buffer.add_string b "\x08\x3b\x9a\xca\x00" (* List of 1e9 *);
  check_bool "huge list length" true (m (Buffer.contents b))

(* Framing over a pipe: the length prefix is bounds-checked before any
   allocation, and a clean EOF at a frame boundary is [None]. *)
let test_framing_pipe () =
  let r, w = Unix.pipe () in
  let payload = Wire.encode_req (Wire.Ping 7) in
  Wire.write_frame w payload;
  (match Wire.read_frame r with
  | Some p -> check_str "payload round-trips the pipe" payload p
  | None -> Alcotest.fail "expected a frame");
  (* oversized declared length *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Wire.max_frame + 1));
  ignore (Unix.write w hdr 0 4);
  (match Wire.read_frame r with
  | _ -> Alcotest.fail "oversized length prefix must be Malformed"
  | exception Wire.Malformed _ -> ());
  (* mid-frame EOF *)
  Bytes.set_int32_be hdr 0 100l;
  ignore (Unix.write w hdr 0 4);
  ignore (Unix.write_substring w "abc" 0 3);
  Unix.close w;
  (match Wire.read_frame r with
  | _ -> Alcotest.fail "mid-frame EOF must be Malformed"
  | exception Wire.Malformed _ -> ());
  Unix.close r;
  (* writer-side cap *)
  match Wire.write_frame Unix.stderr (String.make (Wire.max_frame + 1) 'x') with
  | _ -> Alcotest.fail "oversized write_frame must be Malformed"
  | exception Wire.Malformed _ -> ()

(* ------------------------------------------------------------- *)
(* In-process conformance: one engine, synchronous handle          *)
(* ------------------------------------------------------------- *)

let invoke ?(id = 0) adt meth args = Wire.Invoke { id; adt; meth; args }

let expect_reply what resp =
  match resp with
  | Wire.Reply (_, v) -> v
  | Wire.Err (_, m) -> Alcotest.failf "%s: unexpected error %S" what m

let expect_err what resp =
  match resp with
  | Wire.Err (_, m) -> m
  | Wire.Reply (_, v) ->
      Alcotest.failf "%s: expected an error frame, got %a" what Value.pp v

let test_conformance () =
  let eng = Engine.create ~obs:true ~uf_elements:16 () in
  let h req = Engine.handle eng req in
  (* kvmap *)
  check_bool "put fresh returns None" true
    (expect_reply "put" (h (invoke "kvmap" "put" [| Value.Int 1; Value.Str "a" |]))
    = Value.Opt None);
  check_bool "get sees the put" true
    (expect_reply "get" (h (invoke "kvmap" "get" [| Value.Int 1 |]))
    = Value.Opt (Some (Value.Str "a")));
  check_bool "size counts" true
    (expect_reply "size" (h (invoke "kvmap" "size" [||])) = Value.Int 1);
  check_bool "remove returns the binding" true
    (expect_reply "remove" (h (invoke "kvmap" "remove" [| Value.Int 1 |]))
    = Value.Opt (Some (Value.Str "a")));
  (* set *)
  check_bool "set add" true
    (expect_reply "add" (h (invoke "set" "add" [| Value.Int 5 |])) = Value.Bool true);
  check_bool "set contains" true
    (expect_reply "contains" (h (invoke "set" "contains" [| Value.Int 5 |]))
    = Value.Bool true);
  (* orset *)
  check_bool "orset add" true
    (expect_reply "orset add"
       (h (invoke "orset" "add" [| Value.Str "x"; Value.Int 1 |]))
    = Value.Unit);
  (* union-find on the pre-created elements *)
  check_bool "union" true
    (expect_reply "union" (h (invoke "union-find" "union" [| Value.Int 0; Value.Int 1 |]))
    = Value.Bool true);
  let r0 = expect_reply "find 0" (h (invoke "union-find" "find" [| Value.Int 0 |])) in
  let r1 = expect_reply "find 1" (h (invoke "union-find" "find" [| Value.Int 1 |])) in
  check_bool "united elements share a rep" true (Value.equal r0 r1);
  (* control plane *)
  check_bool "ping" true
    (expect_reply "ping" (h (Wire.Ping 3)) = Value.Unit);
  (match h (Wire.Stats 4) with
  | Wire.Reply (4, Value.Str s) ->
      check_bool "stats is a parsable snapshot" true
        (match Commlat_obs.Jsonx.parse s with Ok _ -> true | Error _ -> false)
  | _ -> Alcotest.fail "stats must reply a JSON string")

(* The server-edge regression: malformed invocations abort only their own
   transaction, answer an error frame, and leave the engine fully
   operational. *)
let test_error_containment () =
  let eng = Engine.create ~uf_elements:8 () in
  let h req = Engine.handle eng req in
  ignore (expect_err "unknown adt" (h (invoke "queue" "push" [| Value.Int 1 |])));
  ignore (expect_err "unknown method" (h (invoke "kvmap" "frobnicate" [||])));
  ignore (expect_err "bad arity" (h (invoke "kvmap" "put" [| Value.Int 1 |])));
  (* Value.Type_error from deep inside the ADT (string where an element
     index belongs) *)
  ignore
    (expect_err "type error aborts the transaction only"
       (h (invoke "union-find" "find" [| Value.Str "wat" |])));
  (* out-of-range element: an Invalid_argument escape route *)
  ignore
    (expect_err "out-of-range index"
       (h (invoke "union-find" "find" [| Value.Int 9_999_999 |])));
  (* the engine is alive and consistent afterwards *)
  check_bool "subsequent valid requests still work" true
    (expect_reply "put" (h (invoke "kvmap" "put" [| Value.Int 2; Value.Int 3 |]))
    = Value.Opt None);
  check_bool "union-find still works" true
    (expect_reply "find" (h (invoke "union-find" "find" [| Value.Int 0 |]))
    = Value.Int 0)

(* Aborted wire transactions must also drop their orset presence-log
   entries (the forget-on-refusal path), and committed ones must not
   leak: after any request sequence the log is empty. *)
let test_orset_log_drains_through_engine () =
  let eng = Engine.create () in
  let h req = Engine.handle eng req in
  for i = 0 to 99 do
    ignore
      (expect_reply "add"
         (h (invoke "orset" "add" [| Value.Int (i mod 7); Value.Int i |])));
    if i mod 3 = 0 then
      ignore
        (expect_reply "remove"
           (h (invoke "orset" "remove" [| Value.Int (i mod 7); Value.Int i |])))
  done;
  check_int "presence log empty after all commits" 0
    (Commlat_adts.Orset.log_size (Engine.orset_handle eng))

(* Flow-graph over the wire: the engine exposes the 64-node ladder
   (chain edges cap 1000, +8 chords cap 500) under "flow-graph".  The
   round-trip checks the Value encodings of all four methods and the
   preflow-side-conditions of push_flow. *)
let test_flow_graph_wire () =
  let eng = Engine.create ~obs:true () in
  let h req = Engine.handle eng req in
  (* heights start at 0 everywhere *)
  check_bool "initial height" true
    (expect_reply "height" (h (invoke "flow-graph" "height" [| Value.Int 0 |]))
    = Value.Int 0);
  (* get_neighbors of node 0: excess 0, height 0, edges to 1 (cap 1000)
     and 8 (cap 500) *)
  (match
     expect_reply "get_neighbors"
       (h (invoke "flow-graph" "get_neighbors" [| Value.Int 0 |]))
   with
  | Value.List [ Value.Int excess; Value.Int height; Value.List ns ] ->
      check_int "node 0 excess" 0 excess;
      check_int "node 0 height" 0 height;
      let caps =
        List.filter_map
          (function
            | Value.Pair (Value.Int v, Value.Int c) -> Some (v, c) | _ -> None)
          ns
      in
      check_bool "chain edge 0->1 cap 1000" true (List.mem (1, 1000) caps);
      check_bool "chord edge 0->8 cap 500" true (List.mem (8, 500) caps)
  | v -> Alcotest.failf "get_neighbors shape: %a" Value.pp v);
  (* push with no excess at the source is a no-op returning 0 *)
  check_bool "push without excess moves nothing" true
    (expect_reply "push_flow"
       (h (invoke "flow-graph" "push_flow" [| Value.Int 0; Value.Int 1 |]))
    = Value.Int 0);
  (* relabel_to returns the PREVIOUS height (its own undo token) *)
  check_bool "relabel_to returns previous height" true
    (expect_reply "relabel_to"
       (h (invoke "flow-graph" "relabel_to" [| Value.Int 0; Value.Int 3 |]))
    = Value.Int 0);
  check_bool "height reads the relabel back" true
    (expect_reply "height" (h (invoke "flow-graph" "height" [| Value.Int 0 |]))
    = Value.Int 3);
  (* even with height 0->3 admissible-looking, excess 0 still means no push *)
  ignore
    (expect_reply "relabel_to"
       (h (invoke "flow-graph" "relabel_to" [| Value.Int 1; Value.Int 2 |])));
  check_bool "push needs source excess, not just heights" true
    (expect_reply "push_flow"
       (h (invoke "flow-graph" "push_flow" [| Value.Int 0; Value.Int 1 |]))
    = Value.Int 0);
  (* malformed requests error without wedging the engine *)
  ignore
    (expect_err "out-of-range node"
       (h (invoke "flow-graph" "height" [| Value.Int 9999 |])));
  ignore (expect_err "bad arity" (h (invoke "flow-graph" "push_flow" [| Value.Int 0 |])));
  check_bool "engine alive after flow-graph errors" true
    (expect_reply "height" (h (invoke "flow-graph" "height" [| Value.Int 1 |]))
    = Value.Int 2)

(* Mid-stream lattice moves: set_level between requests must preserve
   single-threaded conformance, adopt the live ADT state, and keep the
   chain registry consistent. *)
let test_set_level_mid_stream () =
  let eng = Engine.create ~obs:true ~uf_elements:16 () in
  let h req = Engine.handle eng req in
  (* registry shape *)
  let chains = Engine.chains eng in
  let chain adt = List.assoc adt chains in
  check_bool "kvmap chain" true
    (chain "kvmap" = [ "precise"; "simple"; "part" ]);
  check_bool "set chain" true (chain "set" = [ "precise"; "simple"; "part" ]);
  check_bool "flow-graph chain" true
    (chain "flow-graph" = [ "precise"; "simple"; "part" ]);
  check_bool "orset chain" true (chain "orset" = [ "precise"; "part" ]);
  check_bool "union-find chain" true (chain "union-find" = [ "precise" ]);
  check_str "boot level" "precise" (Engine.current_level eng "kvmap");
  (* state written at one level is visible after moving to any other *)
  for i = 0 to 9 do
    ignore
      (expect_reply "put"
         (h (invoke "kvmap" "put" [| Value.Int i; Value.Int (i * i) |])))
  done;
  check_bool "strengthen kvmap to part" true
    (Engine.set_level_name eng "kvmap" "part");
  check_str "now at part" "part" (Engine.current_level eng "kvmap");
  check_int "part is index 2" 2 (Engine.current_level_index eng "kvmap");
  for i = 0 to 9 do
    check_bool "reads survive the swap" true
      (expect_reply "get" (h (invoke "kvmap" "get" [| Value.Int i |]))
      = Value.Opt (Some (Value.Int (i * i))))
  done;
  (* mutate at part, then weaken back to precise and check again *)
  ignore
    (expect_reply "remove" (h (invoke "kvmap" "remove" [| Value.Int 0 |])));
  check_bool "weaken kvmap to precise" true
    (Engine.set_level_name eng "kvmap" "precise");
  check_bool "removal done at part is visible at precise" true
    (expect_reply "get" (h (invoke "kvmap" "get" [| Value.Int 0 |]))
    = Value.Opt None);
  check_bool "size consistent across two swaps" true
    (expect_reply "size" (h (invoke "kvmap" "size" [||])) = Value.Int 9);
  (* same-level set is a no-op, unknown names report false *)
  check_bool "same-level no-op still true" true
    (Engine.set_level_name eng "kvmap" "precise");
  check_bool "unknown level name is false" true
    (not (Engine.set_level_name eng "kvmap" "med"));
  check_bool "union-find has no part level" true
    (not (Engine.set_level_name eng "union-find" "part"));
  (* out-of-range index and unknown adt raise *)
  (match Engine.set_level eng "kvmap" 7 with
  | () -> Alcotest.fail "set_level out of range must raise"
  | exception Invalid_argument _ -> ());
  (match Engine.set_level eng "queue" 0 with
  | () -> Alcotest.fail "set_level unknown adt must raise"
  | exception Invalid_argument _ -> ());
  (* swapped-in detectors come up compiled: moving levels must not cost
     the interpreter path its checks_avoided fast path.  The level
     snapshot exists and is parseable evidence the detector is live. *)
  ignore (Engine.level_snapshot eng "kvmap");
  (* flow-graph joins the dance too *)
  ignore
    (expect_reply "relabel"
       (h (invoke "flow-graph" "relabel_to" [| Value.Int 5; Value.Int 1 |])));
  check_bool "flow-graph strengthen" true
    (Engine.set_level_name eng "flow-graph" "part");
  check_bool "flow-graph state survives its swap" true
    (expect_reply "height" (h (invoke "flow-graph" "height" [| Value.Int 5 |]))
    = Value.Int 1)

(* ------------------------------------------------------------- *)
(* Latency histogram                                              *)
(* ------------------------------------------------------------- *)

let test_histo_quantiles () =
  let h = Histo.create () in
  for v = 1 to 10_000 do
    Histo.record h v
  done;
  check_int "count" 10_000 (Histo.total h);
  check_int "max" 10_000 (Histo.max_recorded h);
  let close q expect =
    let got = Histo.quantile h q in
    let rel = abs_float (float_of_int got -. expect) /. expect in
    if rel > 0.02 then
      Alcotest.failf "quantile %.3f: got %d, want ~%.0f (rel err %.3f)" q got
        expect rel
  in
  close 0.5 5000.0;
  close 0.99 9900.0;
  close 0.999 9990.0;
  check_int "q=1 never exceeds the max" 10_000 (Histo.quantile h 1.0);
  check_bool "mean" true (abs_float (Histo.mean h -. 5000.5) < 1.0)

let test_histo_merge_and_edges () =
  let a = Histo.create () and b = Histo.create () in
  check_int "empty quantile" 0 (Histo.quantile a 0.99);
  Histo.record a 10;
  Histo.record b 1_000_000;
  Histo.record b (-5) (* clamps to 0 *);
  Histo.merge_into ~dst:a b;
  check_int "merged count" 3 (Histo.total a);
  check_int "merged max" 1_000_000 (Histo.max_recorded a);
  check_int "p01 is the clamped value" 0 (Histo.quantile a 0.01);
  check_int "p99 is the big value" 1_000_000 (Histo.quantile a 0.999);
  (* relative error of the log-linear buckets stays under 2/sub *)
  let h = Histo.create () in
  let v = 123_456_789 in
  Histo.record h v;
  let got = Histo.quantile h 0.5 in
  check_bool "bucketed quantile within bound" true
    (got >= v && float_of_int (got - v) /. float_of_int v < 2.0 /. 64.0)

let suite =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_req_roundtrip;
      prop_resp_roundtrip;
      prop_truncated_rejected;
      prop_trailing_rejected;
    ]
  @ [
      Alcotest.test_case "wire: malformed tags and lengths" `Quick
        test_codec_malformed_tags;
      Alcotest.test_case "wire: pipe framing and caps" `Quick test_framing_pipe;
      Alcotest.test_case "engine: conformance" `Quick test_conformance;
      Alcotest.test_case "engine: bad requests are contained" `Quick
        test_error_containment;
      Alcotest.test_case "engine: flow-graph wire round-trip" `Quick
        test_flow_graph_wire;
      Alcotest.test_case "engine: set_level mid-stream conformance" `Quick
        test_set_level_mid_stream;
      Alcotest.test_case "engine: orset log drains" `Quick
        test_orset_log_drains_through_engine;
      Alcotest.test_case "histo: quantiles" `Quick test_histo_quantiles;
      Alcotest.test_case "histo: merge and edge cases" `Quick
        test_histo_merge_and_edges;
    ]
