(* Aggregated test runner: `dune runtest`. *)

let () =
  Alcotest.run "commlat"
    [
      ("value", Test_value.suite);
      ("formula", Test_formula.suite);
      ("compile", Test_compile.suite);
      ("lattice", Test_lattice.suite);
      ("spec", Test_spec.suite);
      ("spec-lang", Test_spec_lang.suite);
      ("analysis", Test_analysis.suite);
      ("strengthen", Test_strengthen.suite);
      ("history", Test_history.suite);
      ("abstract-lock", Test_abstract_lock.suite);
      ("gatekeeper", Test_gatekeeper.suite);
      ("general-gatekeeper", Test_general_gatekeeper.suite);
      ("executor", Test_executor.suite);
      ("footprint", Test_footprint.suite);
      ("wsdeque", Test_wsdeque.suite);
      ("domains", Test_domains.suite);
      ("runtime", Test_runtime.suite);
      ("stm", Test_stm.suite);
      ("adts", Test_adts.suite);
      ("versioned-uf", Test_versioned_uf.suite);
      ("kvmap", Test_kvmap.suite);
      ("apps", Test_apps.suite);
      ("adaptive", Test_adaptive.suite);
      ("obs", Test_obs.suite);
      ("sched", Test_sched.suite);
      ("pexplore", Test_pexplore.suite);
      ("synth", Test_synth.suite);
      ("server", Test_server.suite);
    ]
