(* Tests of the textual specification language: parsing, error reporting,
   agreement with the built-in specs, and print/parse round-trips. *)

open Commlat_core
open Commlat_adts

let check_bool = Alcotest.(check bool)

let specs_dir =
  (* tests run from the dune sandbox; locate the example specs relative to
     the workspace root *)
  let rec find dir n =
    if n = 0 then None
    else if Sys.file_exists (Filename.concat dir "examples/specs/set.spec") then Some dir
    else find (Filename.concat dir "..") (n - 1)
  in
  find "." 6

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- formulas ---- *)

let roundtrip f =
  let printed = Formula.to_string f in
  match Spec_lang.parse_formula_string printed with
  | g -> Formula.equal f g
  | exception Spec_lang.Parse_error (pos, msg) ->
      Fmt.epr "cannot re-parse %S: %a@." printed Spec_lang.pp_error (pos, msg);
      false

let test_formula_roundtrip_builtin () =
  (* every condition of every built-in spec round-trips through pp/parse *)
  List.iter
    (fun spec ->
      List.iter
        (fun ((m1, m2), f) ->
          check_bool (Fmt.str "%s/%s: %a" m1 m2 Formula.pp f) true (roundtrip f))
        (Spec.pairs spec))
    [
      Iset.precise_spec ();
      Iset.simple_spec ();
      Iset.exclusive_spec ();
      Kdtree.spec ();
      Union_find.spec ();
      Accumulator.spec ();
      Flow_graph.spec_rw ();
      Flow_graph.spec_exclusive ();
      Kvmap.precise_spec ();
      Kvmap.simple_spec ();
    ]

let test_formula_roundtrip_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random formulas round-trip through print/parse"
       ~count:500 Test_formula.gen_formula roundtrip)

let test_parse_basics () =
  let f = Spec_lang.parse_formula_string "v1[0] != v2[0] \\/ (r1 = false /\\ r2 = false)" in
  check_bool "fig2 add/add" true
    (Formula.equal f
       Formula.(
         Or (ne (arg1 0) (arg2 0), And (eq ret1 (cbool false), eq ret2 (cbool false)))));
  let g = Spec_lang.parse_formula_string "dist(v1[0], v2[0]) > dist(v1[0], r1)" in
  check_bool "vfun comparison" true
    (Formula.equal g
       Formula.(gt (vfun "dist" [ arg1 0; arg2 0 ]) (vfun "dist" [ arg1 0; ret1 ])));
  let h = Spec_lang.parse_formula_string "rep(s1, v2[0]) != loser(s1, v1[0], v1[1])" in
  check_bool "sfun" true
    (Formula.equal h
       Formula.(ne (sfun "rep" S1 [ arg2 0 ]) (sfun "loser" S1 [ arg1 0; arg1 1 ])));
  let k = Spec_lang.parse_formula_string "v1[0] + 2 * 3 = 7" in
  check_bool "precedence: * binds tighter" true
    (Formula.equal k
       Formula.(
         eq
           (Arith (Add, arg1 0, Arith (Mul, cint 2, cint 3)))
           (cint 7)))

(* substring containment, avoiding extra dependencies *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_parse_errors () =
  let fails src frag =
    match Spec_lang.parse_formula_string src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Spec_lang.Parse_error (_, msg) ->
        check_bool
          (Fmt.str "error for %S mentions %S (got %S)" src frag msg)
          true (contains msg frag)
  in
  fails "v1[" "expected";
  fails "v3[0] = v2[0]" "unknown variable";
  fails "v1[0] =" "expected a term";
  fails "v1[0] != v2[0] trailing" "trailing"

let test_parse_error_positions () =
  (* parse errors carry exact line/column so editors and `commlat lint`
     can point at the offending token *)
  let fails_at src line col =
    match Spec_lang.parse src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Spec_lang.Parse_error (pos, _) ->
        Alcotest.(check (pair int int))
          (Fmt.str "position for %S" src)
          (line, col)
          (pos.Spec_lang.line, pos.Spec_lang.col)
  in
  (* unknown method: error is on the rule line, at the rule start *)
  fails_at "spec t\nmethods m/1 mut\nq ; m commute always" 3 1;
  (* bad operator mid-condition: column points into the formula *)
  fails_at "spec t\nmethods m/1 mut\nm ; m commute if v1[0] !! v2[0]" 3 24;
  (* unterminated condition: truncated at end of the formula text *)
  fails_at "spec t\nmethods m/1 mut\nm ; m commute if v1[0] =" 3 25;
  (* header errors point just past the truncated header *)
  fails_at "spec t" 1 7;
  (* blank/comment lines do not shift reported line numbers *)
  fails_at "# leading comment\n\nspec t\nmethods m/1 mut\n\nq ; m commute always"
    6 1

let test_parse_with_rules_positions () =
  let src =
    "spec t\nmethods a/1 mut, b/1\n\n\
     a ; a commute always\n\
     a ; b commute if v1[0] != v2[0] directed\n"
  in
  let _spec, rules = Spec_lang.parse_with_rules src in
  let pos ~first ~second =
    match Spec_lang.rule_pos rules ~first ~second with
    | Some p -> (p.Spec_lang.line, p.Spec_lang.col)
    | None -> Alcotest.failf "no recorded position for (%s, %s)" first second
  in
  Alcotest.(check (pair int int)) "a;a rule line" (4, 1) (pos ~first:"a" ~second:"a");
  Alcotest.(check (pair int int)) "a;b rule line" (5, 1) (pos ~first:"a" ~second:"b");
  (* the directed rule registers only its own orientation *)
  check_bool "no mirrored position for a directed rule" true
    (Spec_lang.rule_pos rules ~first:"b" ~second:"a" = None)

let test_spec_files () =
  match specs_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
      let parse name = Spec_lang.parse (read (Filename.concat dir ("examples/specs/" ^ name))) in
      (* Fig. 2 file = built-in precise spec, condition for condition *)
      let file_set = parse "set.spec" in
      let builtin = Iset.precise_spec () in
      List.iter
        (fun ((m1, m2), f) ->
          check_bool
            (Fmt.str "set.spec (%s,%s)" m1 m2)
            true
            (Formula.equal f (Spec.cond builtin ~first:m1 ~second:m2)))
        (Spec.pairs file_set);
      check_bool "set.spec classifies ONLINE" true
        (Spec.classify file_set = Formula.Online);
      check_bool "set_rw.spec is SIMPLE" true
        (Spec.classify (parse "set_rw.spec") = Formula.Simple);
      check_bool "accumulator.spec is SIMPLE" true
        (Spec.classify (parse "accumulator.spec") = Formula.Simple);
      check_bool "kdtree.spec is ONLINE" true
        (Spec.classify (parse "kdtree.spec") = Formula.Online);
      check_bool "union_find.spec is GENERAL" true
        (Spec.classify (parse "union_find.spec") = Formula.General);
      (* the kvmap file agrees with the built-in precise spec *)
      (let file_kv = parse "kvmap.spec" in
       let builtin_kv = Kvmap.precise_spec () in
       List.iter
         (fun ((m1, m2), f) ->
           check_bool
             (Fmt.str "kvmap.spec (%s,%s)" m1 m2)
             true
             (Formula.equal f (Spec.cond builtin_kv ~first:m1 ~second:m2)))
         (Spec.pairs file_kv));
      (* the union-find file agrees with the built-in Fig. 5 *)
      let file_uf = parse "union_find.spec" in
      let builtin_uf = Union_find.spec () in
      List.iter
        (fun ((m1, m2), f) ->
          check_bool
            (Fmt.str "union_find.spec (%s,%s)" m1 m2)
            true
            (Formula.equal f (Spec.cond builtin_uf ~first:m1 ~second:m2)))
        (Spec.pairs file_uf)

let test_spec_roundtrip () =
  (* print a built-in spec in the textual form and re-parse: all conditions
     must survive *)
  List.iter
    (fun spec ->
      let printed = Spec_lang.spec_to_string spec in
      let reparsed =
        try Spec_lang.parse printed
        with Spec_lang.Parse_error (pos, msg) ->
          Alcotest.failf "re-parse of %s failed: %a@.%s" (Spec.adt spec)
            Spec_lang.pp_error (pos, msg) printed
      in
      List.iter
        (fun ((m1, m2), f) ->
          check_bool
            (Fmt.str "%s (%s,%s)" (Spec.adt spec) m1 m2)
            true
            (Formula.equal f (Spec.cond reparsed ~first:m1 ~second:m2)))
        (Spec.pairs spec))
    [
      Iset.precise_spec ();
      Iset.simple_spec ();
      Union_find.spec ();
      Kdtree.spec ();
      Accumulator.spec ();
      Flow_graph.spec_rw ();
      Kvmap.precise_spec ();
    ]

let test_spec_structure_errors () =
  let fails src frag =
    match Spec_lang.parse src with
    | _ -> Alcotest.failf "expected parse error"
    | exception Spec_lang.Parse_error (_, msg) ->
        check_bool (Fmt.str "mentions %S in %S" frag msg) true (contains msg frag)
  in
  fails "spec t methods m/1\nq ; m commute always" "unknown method";
  fails "spec t methods m/1\nm ; m commute if v1[3] != v2[0]" "out of range";
  fails "spec t methods m/1\nm ; m commute if rep(s1, v2[0]) != r1"
    "state-dependent";
  fails "spec t" "expected 'methods'"

let suite =
  [
    Alcotest.test_case "built-in conditions round-trip" `Quick
      test_formula_roundtrip_builtin;
    test_formula_roundtrip_random;
    Alcotest.test_case "parse basics" `Quick test_parse_basics;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse error positions" `Quick test_parse_error_positions;
    Alcotest.test_case "rule positions" `Quick test_parse_with_rules_positions;
    Alcotest.test_case "example spec files" `Quick test_spec_files;
    Alcotest.test_case "spec print/parse round-trip" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec structure errors" `Quick test_spec_structure_errors;
  ]
