(* Quick end-to-end smoke of every subsystem; superseded by the test suite
   but kept as a fast sanity binary: dune exec bin/smoke.exe *)

open Commlat_core
open Commlat_adts
open Commlat_runtime
open Commlat_apps

let pf = Format.printf

let () =
  (* --- specs and classification --- *)
  let precise = Iset.precise_spec () in
  let simple = Iset.simple_spec () in
  pf "set precise spec class: %a@." Formula.pp_cls (Spec.classify precise);
  pf "set simple  spec class: %a@." Formula.pp_cls (Spec.classify simple);
  pf "kdtree spec class: %a@." Formula.pp_cls (Spec.classify (Kdtree.spec ()));
  pf "union-find spec class: %a@." Formula.pp_cls (Spec.classify (Union_find.spec ()));
  assert (Lattice.spec_leq simple precise);
  assert (not (Lattice.spec_leq precise simple));

  (* --- abstract lock construction: accumulator (Fig. 8) --- *)
  let acc_scheme = Abstract_lock.construct (Accumulator.spec ()) in
  pf "@.accumulator compatibility matrix (full):@.%a"
    (Abstract_lock.pp_matrix ~only_used:false) acc_scheme;
  let reduced = Abstract_lock.reduce acc_scheme in
  pf "reduced:@.%a" (Abstract_lock.pp_matrix ~only_used:true) reduced;

  (* --- set microbenchmark, tiny --- *)
  List.iter
    (fun s ->
      let r = Set_micro.run ~threads:4 ~classes:10 ~n:2000 s in
      pf "set-micro %-14s aborts=%5.2f%% makespan=%6.0f wall=%.3fs@."
        (Set_micro.scheme_name s) r.Set_micro.abort_pct r.Set_micro.makespan
        r.Set_micro.wall_s)
    Set_micro.all_schemes;

  (* --- preflow push on a small genrmf --- *)
  let inp = Genrmf.generate ~a:3 ~b:4 () in
  let expected =
    Reference.max_flow ~n:inp.Genrmf.n ~source:inp.Genrmf.source
      ~sink:inp.Genrmf.sink inp.Genrmf.edges
  in
  let p = Preflow_push.of_genrmf inp in
  let det =
    Protect.protect ~spec:(Flow_graph.spec_rw ()) ~adt:(Protect.adt ())
      Protect.Abstract_lock
  in
  let flow, stats = Preflow_push.run ~processors:4 ~detector:det p in
  pf "@.preflow-push rw: flow=%d (expected %d) %a@." flow expected
    Executor.pp_stats stats;
  assert (flow = expected);

  (* --- boruvka on a small mesh, general gatekeeper --- *)
  let mesh = Mesh.generate ~rows:8 ~cols:8 () in
  let expected_w = Reference.mst_weight ~n:mesh.Mesh.nodes mesh.Mesh.edges in
  let t = Boruvka.create ~mesh () in
  let det =
    Protect.protect ~spec:(Union_find.spec ())
      ~adt:(Protect.adt ~hooks:(Union_find.hooks t.Boruvka.uf) ())
      Protect.General_gk
  in
  let stats =
    Executor.run_rounds ~processors:4
      ~detector:(Boruvka.full_detector t det)
      ~operator:(Boruvka.operator t det)
      (List.init mesh.Mesh.nodes Fun.id)
  in
  let w = Boruvka.mst_weight t.Boruvka.mst in
  pf "boruvka uf-gk: mst weight=%d (expected %d) %a@." w expected_w
    Executor.pp_stats stats;
  assert (w = expected_w);

  (* --- clustering with forward gatekeeper --- *)
  let pts = Point.random_cloud ~seed:5 ~dim:2 64 in
  let tt = Clustering.create ~dims:2 () in
  Clustering.load tt pts;
  let det =
    Protect.protect ~spec:(Kdtree.spec ())
      ~adt:(Protect.adt ~hooks:(Kdtree.hooks tt.Clustering.tree) ())
      Protect.Forward_gk
  in
  let stats =
    Executor.run_rounds ~processors:4 ~detector:det
      ~operator:(Clustering.operator tt det) (Array.to_list pts)
  in
  pf "clustering kd-gk: merges=%d (expected %d) tree size=%d %a@."
    (List.length tt.Clustering.dendrogram)
    (Array.length pts - 1)
    (Kdtree.size tt.Clustering.tree)
    Executor.pp_stats stats;
  assert (List.length tt.Clustering.dendrogram = Array.length pts - 1);
  assert (Kdtree.size tt.Clustering.tree = 1);

  (* --- boruvka with STM baseline --- *)
  let mesh2 = Mesh.generate ~rows:6 ~cols:6 () in
  let t2 = Boruvka.create ~mesh:mesh2 () in
  let det2 =
    Protect.protect ~spec:(Union_find.spec ())
      ~adt:(Protect.adt ~connect_tracer:(Union_find.set_tracer t2.Boruvka.uf) ())
      Protect.Stm
  in
  let stats2 =
    Executor.run_rounds ~processors:4
      ~detector:(Boruvka.full_detector t2 det2)
      ~operator:(Boruvka.operator t2 det2)
      (List.init mesh2.Mesh.nodes Fun.id)
  in
  let w2 = Boruvka.mst_weight t2.Boruvka.mst in
  pf "boruvka uf-ml: mst weight=%d (expected %d) %a@." w2
    (Reference.mst_weight ~n:mesh2.Mesh.nodes mesh2.Mesh.edges)
    Executor.pp_stats stats2;
  assert (w2 = Reference.mst_weight ~n:mesh2.Mesh.nodes mesh2.Mesh.edges);

  pf "@.ALL SMOKE CHECKS PASSED@."
