(* The commlat command-line tool: work with textual commutativity
   specifications (see Spec_lang and examples/specs/).

     commlat classify FILE        classification + per-condition breakdown
     commlat matrix FILE          synthesized abstract-lock matrix (SIMPLE)
     commlat check FILE           parse + well-formedness + totality report
     commlat lint FILE...         static analysis: bounded soundness vs the
                                  reference ADT semantics, structural lints,
                                  strengthening-chain validation (--chain)
     commlat synth --adt NAME     CEGIS-synthesize a spec from the reference
                                  semantics, verify it unboundedly by
                                  product-program reachability, diff it
                                  against the hand-written spec
     commlat order FILE1 FILE2    lattice comparison of two specs
     commlat print FILE           canonical re-print (round-trips)
     commlat stats FILE           render/validate observability snapshots
                                  from bench/main.exe --json output
     commlat explore WORKLOAD     systematic interleaving exploration with
                                  commutativity (DPOR-style) pruning and
                                  replayable, shrunk counterexamples

   Flag conventions shared with bench/main.exe: [--json FILE] writes the
   machine-readable form of a subcommand's report next to its text output,
   and [--detector SCHEME] uses the canonical scheme spellings of
   {!Commlat_runtime.Protect.scheme_of_string} (global-lock, abslock,
   fwd-gk, gen-gk, stm, with an optional -sharded[:N] suffix).

   Exit codes: 0 success; 1 analysis errors (lint), validation failures or
   unsupported detector schemes; 2 unreadable/unparsable input (with a
   positioned error message). *)

open Commlat_core
open Commlat_runtime
open Commlat_analysis
open Cmdliner

(* Shared exit-code documentation, rendered in every subcommand's --help. *)
let exits =
  Cmd.Exit.info 0 ~doc:"on success."
  :: Cmd.Exit.info 1
       ~doc:
         "on analysis errors ($(b,lint)), failed validation ($(b,stats \
          --validate)), incomparable specifications ($(b,order)), or a \
          specification outside the requested $(b,--detector) scheme's \
          logic fragment."
  :: Cmd.Exit.info 2
       ~doc:
         "on unreadable or unparsable input (a positioned error message is \
          printed on stderr)."
  :: Cmd.Exit.defaults

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | src -> src
  | exception Sys_error msg ->
      Fmt.epr "%s: cannot read: %s@." path msg;
      exit 2

let load path =
  match Spec_lang.parse (read_file path) with
  | spec -> spec
  | exception Spec_lang.Parse_error (pos, msg) ->
      Fmt.epr "%s: %a@." path Spec_lang.pp_error (pos, msg);
      exit 2

let spec_file_arg ?(pos = 0) () =
  let p = pos in
  Arg.(required & pos p (some file) None & info [] ~docv:"SPEC" ~doc:"Specification file.")

let write_out path s =
  match
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc s)
  with
  | () -> ()
  | exception Sys_error msg ->
      Fmt.epr "%s: cannot write: %s@." path msg;
      exit 2

(* [--json FILE]: same spelling as bench/main.exe. *)
let json_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Also write the report as machine-readable JSON to $(docv) (the \
           same flag spelling as $(b,bench/main.exe --json)).")

(* [--detector SCHEME]: same spellings as bench/main.exe --detector. *)
let scheme_conv : Protect.scheme Arg.conv =
  let parse s =
    match Protect.scheme_of_string s with
    | Ok v -> Ok v
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf s -> Fmt.string ppf (Protect.scheme_name s))

let detector_arg =
  Arg.(
    value
    & opt (some scheme_conv) None
    & info [ "detector" ] ~docv:"SCHEME"
        ~doc:
          "A detector scheme (canonical spellings: $(b,global-lock), \
           $(b,abslock), $(b,fwd-gk), $(b,gen-gk), $(b,stm), optionally \
           with a $(b,-sharded[:N]) suffix — shared with \
           $(b,bench/main.exe --detector)).")

(* Can [scheme] soundly detect conflicts for a spec of classification
   [cls]?  Mirrors what Protect.protect would accept. *)
let rec scheme_admits (cls : Formula.cls) : Protect.scheme -> bool = function
  | Protect.Global_lock | Protect.Stm | Protect.General_gk -> true
  | Protect.Abstract_lock -> cls = Formula.Simple
  | Protect.Forward_gk -> cls <> Formula.General
  | Protect.Sharded (b, n) -> (
      n > 0
      &&
      match b with
      | Protect.Abstract_lock | Protect.Forward_gk | Protect.General_gk ->
          scheme_admits cls b
      | Protect.Global_lock | Protect.Stm | Protect.Sharded _ -> false)

(* ---- classify ---- *)

let classify_cmd =
  let run path json detector =
    let spec = load path in
    let cls = Spec.classify spec in
    Fmt.pr "spec %s: %a@." (Spec.adt spec) Formula.pp_cls cls;
    Fmt.pr "@.per-condition breakdown:@.";
    List.iter
      (fun ((m1, m2), f) ->
        Fmt.pr "  %-12s ; %-12s %-18s %a@." m1 m2
          (Fmt.str "%a" Formula.pp_cls (Formula.classify f))
          Formula.pp f)
      (Spec.pairs spec);
    let scheme_of_cls = function
      | Formula.Simple -> Protect.Abstract_lock
      | Formula.Online -> Protect.Forward_gk
      | Formula.General -> Protect.General_gk
    in
    Fmt.pr "@.implementation: %s (scheme %s)@."
      (match cls with
      | Formula.Simple -> "abstract locking (paper §3.2)"
      | Formula.Online -> "forward gatekeeper (paper §3.3.1)"
      | Formula.General -> "general gatekeeper with state rollback (paper §3.3.2)")
      (Protect.scheme_name (scheme_of_cls cls));
    let admits =
      match detector with
      | None -> true
      | Some s ->
          let ok = scheme_admits cls s in
          Fmt.pr "detector %s: %s@." (Protect.scheme_name s)
            (if ok then "supported"
             else
               Fmt.str "NOT supported (spec is %a)" Formula.pp_cls cls);
          ok
    in
    (match json with
    | None -> ()
    | Some file ->
        let module J = Commlat_obs.Jsonx in
        let doc =
          J.Obj
            ([
               ("schema", J.Str "commlat-classify/1");
               ("adt", J.Str (Spec.adt spec));
               ("classification", J.Str (Fmt.str "%a" Formula.pp_cls cls));
               ("scheme", J.Str (Protect.scheme_name (scheme_of_cls cls)));
               ( "pairs",
                 J.List
                   (List.map
                      (fun ((m1, m2), f) ->
                        J.Obj
                          [
                            ("m1", J.Str m1);
                            ("m2", J.Str m2);
                            ( "classification",
                              J.Str (Fmt.str "%a" Formula.pp_cls (Formula.classify f)) );
                            ("condition", J.Str (Fmt.str "%a" Formula.pp f));
                          ])
                      (Spec.pairs spec)) );
             ]
            @
            match detector with
            | None -> []
            | Some s ->
                [
                  ("detector", J.Str (Protect.scheme_name s));
                  ("supported", J.Bool (scheme_admits cls s));
                ])
        in
        write_out file (J.to_string doc));
    if not admits then exit 1
  in
  Cmd.v
    (Cmd.info "classify" ~exits
       ~doc:
         "Classify a specification (SIMPLE / ONLINE-CHECKABLE / GENERAL). \
          With $(b,--detector), additionally report whether the given \
          scheme can implement it (exit 1 if not).")
    Term.(const run $ spec_file_arg () $ json_file_arg $ detector_arg)

(* ---- matrix ---- *)

let matrix_cmd =
  let run path reduce json =
    let spec = load path in
    match Abstract_lock.construct spec with
    | scheme ->
        let scheme = if reduce then Abstract_lock.reduce scheme else scheme in
        Fmt.pr "abstract-lock compatibility matrix for %s%s:@.%a@."
          (Spec.adt spec)
          (if reduce then " (reduced)" else "")
          (Abstract_lock.pp_matrix ~only_used:reduce)
          scheme
        ;
        (match json with
        | None -> ()
        | Some file ->
            let module J = Commlat_obs.Jsonx in
            let n = Abstract_lock.n_modes scheme in
            let doc =
              J.Obj
                [
                  ("schema", J.Str "commlat-matrix/1");
                  ("adt", J.Str (Spec.adt spec));
                  ("reduced", J.Bool reduce);
                  ( "modes",
                    J.List
                      (List.init n (fun i ->
                           J.Str (Abstract_lock.mode_name scheme i))) );
                  ( "compat",
                    J.List
                      (List.init n (fun i ->
                           J.List
                             (List.init n (fun j ->
                                  J.Bool scheme.Abstract_lock.compat.(i).(j))))) );
                ]
            in
            write_out file (J.to_string doc))
    | exception Abstract_lock.Not_simple (m1, m2, f) ->
        Fmt.epr
          "%s is not SIMPLE: condition for (%s, %s) is %a@.No sound and \
           complete abstract locking scheme exists (Theorem 1); use a \
           gatekeeper, or strengthen the spec to its SIMPLE core.@."
          (Spec.adt spec) m1 m2 Formula.pp f;
        exit 1
  in
  let reduce =
    Arg.(value & flag & info [ "reduce"; "r" ] ~doc:"Drop superfluous modes (Fig. 8b).")
  in
  Cmd.v
    (Cmd.info "matrix" ~exits
       ~doc:"Synthesize the abstract-locking scheme of a SIMPLE spec.")
    Term.(const run $ spec_file_arg () $ reduce $ json_file_arg)

(* ---- check ---- *)

let check_cmd =
  let run path json =
    let spec = load path in
    (match Spec.validate spec with
    | () -> ()
    | exception Invalid_argument msg ->
        Fmt.epr "%s: %s@." path msg;
        exit 2);
    let methods = Spec.methods spec in
    let missing = ref [] in
    List.iter
      (fun (m1 : Invocation.meth) ->
        List.iter
          (fun (m2 : Invocation.meth) ->
            if
              not
                (List.mem_assoc (m1.Invocation.name, m2.Invocation.name)
                   (Spec.pairs spec))
            then missing := (m1.Invocation.name, m2.Invocation.name) :: !missing)
          methods)
      methods;
    Fmt.pr "%s: %d methods, %d conditions, classification %a@." (Spec.adt spec)
      (List.length methods)
      (List.length (Spec.pairs spec))
      Formula.pp_cls (Spec.classify spec);
    (match !missing with
    | [] -> Fmt.pr "total: every ordered method pair has a condition@."
    | ms ->
        Fmt.pr "missing (default to 'never', i.e. always conflict):@.";
        List.iter (fun (a, b) -> Fmt.pr "  %s ; %s@." a b) (List.rev ms));
    (* strengthening hint *)
    if Spec.classify spec <> Formula.Simple then
      Fmt.pr "@.SIMPLE core (lockable strengthening, paper §4.1):@.%a"
        Spec_lang.print_spec
        (Strengthen.simple_spec ~adt:(Spec.adt spec ^ "_simple") spec);
    match json with
    | None -> ()
    | Some file ->
        let module J = Commlat_obs.Jsonx in
        let doc =
          J.Obj
            [
              ("schema", J.Str "commlat-check/1");
              ("adt", J.Str (Spec.adt spec));
              ("methods", J.Int (List.length methods));
              ("conditions", J.Int (List.length (Spec.pairs spec)));
              ( "classification",
                J.Str (Fmt.str "%a" Formula.pp_cls (Spec.classify spec)) );
              ( "missing_pairs",
                J.List
                  (List.rev_map
                     (fun (a, b) -> J.List [ J.Str a; J.Str b ])
                     !missing) );
            ]
        in
        write_out file (J.to_string doc)
  in
  Cmd.v
    (Cmd.info "check" ~exits ~doc:"Parse and report on a specification.")
    Term.(const run $ spec_file_arg () $ json_file_arg)

(* ---- lint ---- *)

let lint_cmd =
  let run paths format chain max_cx json detector =
    (* load everything first: any unreadable/unparsable input is a
       positioned error and exit 2, matching the other subcommands *)
    let sources, parse_errors =
      List.fold_left
        (fun (ok, errs) path ->
          match Lint.load_file path with
          | Ok src -> (src :: ok, errs)
          | Error d -> (ok, d :: errs))
        ([], []) paths
    in
    let sources = List.rev sources and parse_errors = List.rev parse_errors in
    (* --detector: flag every spec outside the scheme's logic fragment
       (e.g. a GENERAL spec under fwd-gk), mirroring what Protect.protect
       would reject at construction time *)
    let detector_diags =
      match detector with
      | None -> []
      | Some scheme ->
          List.filter_map
            (fun (src : Lint.source) ->
              let spec = src.Lint.src_spec in
              let cls = Spec.classify spec in
              if scheme_admits cls scheme then None
              else
                Some
                  (Diagnostic.make ?file:src.Lint.src_file
                     ~spec:(Spec.adt spec) ~sev:Diagnostic.Error
                     ~code:"detector"
                     "specification is %a, outside scheme %s's fragment"
                     Formula.pp_cls cls
                     (Protect.scheme_name scheme)))
            sources
    in
    let diags =
      List.concat_map (Lint.analyze ~max_counterexamples:max_cx) sources
      @ (if chain then Lint.analyze_chain sources else [])
      @ detector_diags @ parse_errors
    in
    let diags = Diagnostic.sort diags in
    (match json with
    | None -> ()
    | Some file -> write_out file (Diagnostic.list_to_json diags));
    (match format with
    | `Json -> Fmt.pr "%s@." (Diagnostic.list_to_json diags)
    | `Text ->
        List.iter (fun d -> Fmt.pr "@[<v>%a@]@." Diagnostic.pp d) diags;
        let e, w, i = Diagnostic.count diags in
        Fmt.pr "%d file%s checked: %d error%s, %d warning%s, %d note%s@."
          (List.length paths)
          (if List.length paths = 1 then "" else "s")
          e
          (if e = 1 then "" else "s")
          w
          (if w = 1 then "" else "s")
          i
          (if i = 1 then "" else "s"));
    if parse_errors <> [] then exit 2
    else if Lint.has_errors diags then exit 1
    else exit 0
  in
  let paths =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"SPEC" ~doc:"Specification files to analyse.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format"; "f" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text) or $(b,json) (machine-readable, for CI).")
  in
  let chain =
    Arg.(
      value & flag
      & info [ "chain" ]
          ~doc:
            "Treat the files as a strengthening chain (weakest first) and \
             verify each step descends the commutativity lattice.")
  in
  let max_cx =
    Arg.(
      value & opt int 3
      & info [ "max-counterexamples" ] ~docv:"N"
          ~doc:
            "Counterexample traces retained per method pair (default 3). The \
             cap trims the traces attached to $(b,unsound) diagnostics, never \
             the diagnostics themselves: $(b,--max-counterexamples 0) still \
             reports every unsound pair (and still exits 1), just without \
             replay traces. Diagnostics are emitted in a deterministic order \
             (file, position, severity, code, pair) regardless of N, so lint \
             output is directly diffable in CI.")
  in
  Cmd.v
    (Cmd.info "lint" ~exits
       ~doc:
         "Statically analyse specifications: bounded soundness/completeness \
          against the registered reference ADT semantics, structural lints \
          (dead disjuncts, misclassification, asymmetric coverage, \
          superfluous lock modes), strengthening-chain validation, and \
          $(b,--detector) fragment checks. Exits 1 if any error-severity \
          diagnostic is reported, 2 on unparsable input.")
    Term.(const run $ paths $ format $ chain $ max_cx $ json_file_arg $ detector_arg)

(* ---- synth ---- *)

let synth_cmd =
  (* the built-in references: the hand-written precise specs whose
     conditions the synthesizer must re-derive from semantics alone *)
  let builtin = function
    | "set" -> Some (Commlat_adts.Iset.precise_spec ())
    | "accumulator" -> Some (Commlat_adts.Accumulator.spec ())
    | "kvmap" -> Some (Commlat_adts.Kvmap.precise_spec ())
    | "orset" -> Some (Commlat_adts.Orset.spec ())
    | "triset" -> Some (Commlat_adts.Triset.precise_spec ())
    | _ -> None
  in
  let jstr s = "\"" ^ Diagnostic.json_escape s ^ "\"" in
  let jpair (m1, m2) = Fmt.str "[%s,%s]" (jstr m1) (jstr m2) in
  let jverdict = function
    | Verify.Proved n -> Fmt.str "{\"verdict\":\"proved\",\"cases\":%d}" n
    | Verify.Refuted r ->
        Fmt.str
          "{\"verdict\":\"refuted\",\"case\":%s,\"setup\":[%s],\"args1\":%s,\"args2\":%s,\"trace\":%s}"
          (jstr r.Verify.rf_case)
          (String.concat ","
             (List.map
                (fun (m, args) -> Fmt.str "[%s,%s]" (jstr m) (jstr (Fmt.str "%a" Fmt.(list ~sep:comma Value.pp) args)))
                r.Verify.rf_setup))
          (jstr (Fmt.str "%a" Fmt.(list ~sep:comma Value.pp) r.Verify.rf_args1))
          (jstr (Fmt.str "%a" Fmt.(list ~sep:comma Value.pp) r.Verify.rf_args2))
          (jstr (Fmt.str "%a" Verify.pp_verdict (Verify.Refuted r)))
    | Verify.Unknown reason ->
        Fmt.str "{\"verdict\":\"unknown\",\"reason\":%s}" (jstr reason)
  in
  let run spec_path adt batch json out =
    let reference =
      match (spec_path, adt) with
      | Some p, None -> load p
      | None, Some a -> (
          match builtin a with
          | Some s -> s
          | None ->
              Fmt.epr
                "synth: no built-in ADT %s (try set, accumulator, kvmap, orset, \
                 triset)@."
                a;
              exit 2)
      | _ ->
          Fmt.epr "synth: give exactly one of SPEC or --adt NAME@.";
          exit 2
    in
    match Domain.find (Spec.adt reference) with
    | None ->
        Fmt.epr "synth: no reference domain registered for ADT %s@."
          (Spec.adt reference);
        exit 1
    | Some dom ->
        let r = Synth.synthesize ~batch dom reference in
        let ver = Verify.verify_spec r.Synth.sy_spec in
        let rels = Equiv.compare_specs dom ~hand:reference ~synth:r.Synth.sy_spec in
        let verdict_of pair =
          List.find_opt (fun (p : Verify.pair_verdict) -> p.Verify.vf_pair = pair)
            ver.Verify.vf_pairs
        in
        let relation_of pair =
          List.find_opt (fun (e : Equiv.pair_relation) -> e.Equiv.eq_pair = pair)
            rels
        in
        let converged =
          List.for_all (fun (p : Synth.pair_result) -> p.Synth.sy_converged)
            r.Synth.sy_results
        in
        let refuted = Verify.any_refuted ver in
        let acceptable =
          List.for_all (fun (e : Equiv.pair_relation) ->
              Equiv.acceptable e.Equiv.eq_relation)
            rels
        in
        let ok = converged && (not refuted) && acceptable in
        (* the verdict-stamped spec: deterministic # header + canonical
           re-print, the exact bytes CI diffs against the golden files *)
        let stamped =
          let buf = Buffer.create 1024 in
          Buffer.add_string buf
            (Fmt.str
               "# synthesized by commlat synth: CEGIS over the bounded reference\n\
                # semantics of domain `%s`, conditions verified unboundedly by\n\
                # product-program reachability, diffed against the reference\n\
                # specification modulo (observational) lattice equivalence.\n"
               dom.Domain.dom_name);
          List.iter
            (fun (p : Synth.pair_result) ->
              let m1, m2 = p.Synth.sy_pair in
              Buffer.add_string buf
                (Fmt.str
                   "#   %s;%s: iterations=%d samples=%d scenarios=%d residual=%d verify=%s vs-reference=%s\n"
                   m1 m2 p.Synth.sy_iterations p.Synth.sy_samples
                   p.Synth.sy_scenarios p.Synth.sy_residual_incomplete
                   (match verdict_of (m1, m2) with
                   | Some v -> (
                       match v.Verify.vf_verdict with
                       | Verify.Proved n -> Fmt.str "proved/%d" n
                       | Verify.Refuted _ -> "REFUTED"
                       | Verify.Unknown _ -> "unknown")
                   | None -> "-")
                   (match relation_of (m1, m2) with
                   | Some e -> Equiv.relation_name e.Equiv.eq_relation
                   | None -> "-")))
            r.Synth.sy_results;
          Buffer.add_string buf (Fmt.str "%a" Spec_lang.print_spec r.Synth.sy_spec);
          Buffer.contents buf
        in
        (match out with
        | None -> print_string stamped
        | Some file -> write_out file stamped);
        (match json with
        | None -> ()
        | Some file ->
            let pairs_json =
              List.map
                (fun (p : Synth.pair_result) ->
                  Fmt.str
                    "{\"pair\":%s,\"condition\":%s,\"iterations\":%d,\"samples\":%d,\"scenarios\":%d,\"residual_incomplete\":%d,\"converged\":%b}"
                    (jpair p.Synth.sy_pair)
                    (jstr (Formula.to_string p.Synth.sy_cond))
                    p.Synth.sy_iterations p.Synth.sy_samples p.Synth.sy_scenarios
                    p.Synth.sy_residual_incomplete p.Synth.sy_converged)
                r.Synth.sy_results
            in
            let verify_json =
              List.map
                (fun (p : Verify.pair_verdict) ->
                  Fmt.str "{\"pair\":%s,\"condition\":%s,%s}"
                    (jpair p.Verify.vf_pair)
                    (jstr (Formula.to_string p.Verify.vf_cond))
                    (String.sub (jverdict p.Verify.vf_verdict) 1
                       (String.length (jverdict p.Verify.vf_verdict) - 2)))
                ver.Verify.vf_pairs
            in
            let diff_json =
              List.map
                (fun (e : Equiv.pair_relation) ->
                  Fmt.str
                    "{\"pair\":%s,\"relation\":%s,\"syntactic_equal\":%b,\"envs\":%d,\"reference\":%s,\"synthesized\":%s}"
                    (jpair e.Equiv.eq_pair)
                    (jstr (Equiv.relation_name e.Equiv.eq_relation))
                    e.Equiv.eq_syntactic_equal e.Equiv.eq_envs
                    (jstr (Formula.to_string e.Equiv.eq_hand))
                    (jstr (Formula.to_string e.Equiv.eq_synth)))
                rels
            in
            write_out file
              (Fmt.str
                 "{\"schema\":\"commlat-synth/1\",\"adt\":%s,\"domain\":%s,\"converged\":%b,\"refuted\":%b,\"acceptable\":%b,\"ok\":%b,\n\
                  \"cegis\":[%s],\n\
                  \"verify\":{\"family\":%s,\"frame\":%s,\"pairs\":[%s]},\n\
                  \"diff\":[%s]}"
                 (jstr (Spec.adt reference))
                 (jstr dom.Domain.dom_name)
                 converged refuted acceptable ok
                 (String.concat ",\n " pairs_json)
                 (match ver.Verify.vf_family with
                 | Some f -> jstr f
                 | None -> "null")
                 (jstr ver.Verify.vf_frame)
                 (String.concat ",\n " verify_json)
                 (String.concat ",\n " diff_json)));
        if ok then exit 0 else exit 1
  in
  let spec_path =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"SPEC"
          ~doc:
            "Reference specification file (its method signatures and value \
             functions seed the synthesis; its conditions are only used for \
             the final lattice diff).")
  in
  let adt =
    Arg.(
      value
      & opt (some string) None
      & info [ "adt" ] ~docv:"NAME"
          ~doc:
            "Use a built-in reference instead of a SPEC file: $(b,set), \
             $(b,accumulator), $(b,kvmap), or $(b,orset).")
  in
  let batch =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~docv:"N"
          ~doc:"Counterexamples added to the sample set per CEGIS refinement.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the verdict-stamped specification to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "synth" ~exits
       ~doc:
         "Synthesize a commutativity specification from the registered \
          reference ADT semantics by CEGIS (propose a DNF separator over \
          the spec-logic atom grammar, refute against the bounded scenario \
          oracle, refine), then verify every synthesized condition \
          unboundedly by product-program reachability and diff it against \
          the reference specification modulo lattice equivalence. The \
          emitted spec round-trips through the spec language and carries a \
          verdict-stamped header. Exits 0 only if synthesis converged, no \
          condition was refuted, and every condition is lattice-equivalent \
          to or weaker (more precise) than the reference; 1 otherwise; 2 \
          on unparsable input.")
    Term.(const run $ spec_path $ adt $ batch $ json_file_arg $ out)

(* ---- order ---- *)

let order_cmd =
  let run p1 p2 =
    let s1 = load p1 and s2 = load p2 in
    let le12 = Lattice.spec_leq s1 s2 and le21 = Lattice.spec_leq s2 s1 in
    (match (le12, le21) with
    | true, true -> Fmt.pr "%s and %s are equivalent@." (Spec.adt s1) (Spec.adt s2)
    | true, false ->
        Fmt.pr "%s < %s : the first is a strengthening (fewer commutes, \
                cheaper schemes)@."
          (Spec.adt s1) (Spec.adt s2)
    | false, true ->
        Fmt.pr "%s < %s : the second is a strengthening@." (Spec.adt s2) (Spec.adt s1)
    | false, false ->
        Fmt.pr "%s and %s are incomparable (syntactic check)@." (Spec.adt s1)
          (Spec.adt s2));
    exit (if le12 || le21 then 0 else 1)
  in
  Cmd.v
    (Cmd.info "order" ~exits ~doc:"Compare two specifications in the commutativity lattice.")
    Term.(const run $ spec_file_arg ~pos:0 () $ spec_file_arg ~pos:1 ())

(* ---- stats ---- *)

module Obs = Commlat_obs.Obs
module Jsonx = Commlat_obs.Jsonx

let stats_cmd =
  let run path validate =
    let src = read_file path in
    match Jsonx.parse src with
    | Error msg ->
        Fmt.epr "%s: not JSON: %s@." path msg;
        exit 2
    | Ok json ->
        (* Pull out every observability snapshot anywhere in the document,
           labelling each with the identifying fields ("variant", "scheme",
           "input", "figure", "threads") of the nearest enclosing row. *)
        let row_label kvs =
          let s k =
            match List.assoc_opt k kvs with
            | Some (Jsonx.Str v) -> Some (Fmt.str "%s=%s" k v)
            | Some (Jsonx.Int v) -> Some (Fmt.str "%s=%d" k v)
            | _ -> None
          in
          match
            List.filter_map s [ "figure"; "variant"; "scheme"; "input"; "threads" ]
          with
          | [] -> None
          | parts -> Some (String.concat " " parts)
        in
        let rec collect label acc j =
          match (if Obs.is_snapshot_json j then Obs.snapshot_of_json j else Error "") with
          | Ok s -> (label, s) :: acc
          | Error _ -> (
              match j with
              | Jsonx.List l -> List.fold_left (collect label) acc l
              | Jsonx.Obj kvs ->
                  let label =
                    match row_label kvs with Some l -> Some l | None -> label
                  in
                  List.fold_left (fun acc (_, v) -> collect label acc v) acc kvs
              | _ -> acc)
        in
        let snaps = List.rev (collect None [] json) in
        if validate then (
          (* CI gate: the file must be a commlat-bench/1 document whose
             every row carries a well-formed snapshot under "obs". *)
          let fail fmt = Fmt.kstr (fun m -> Fmt.epr "%s: invalid: %s@." path m; exit 1) fmt in
          let mem k kvs = List.assoc_opt k kvs in
          match json with
          | Jsonx.Obj kvs -> (
              (match mem "schema" kvs with
              | Some (Jsonx.Str "commlat-bench/1") -> ()
              | _ -> fail "missing or unexpected \"schema\" (want commlat-bench/1)");
              (match mem "experiment" kvs with
              | Some (Jsonx.Str _) -> ()
              | _ -> fail "missing \"experiment\"");
              (match mem "seed" kvs with
              | Some (Jsonx.Int _) -> ()
              | _ ->
                  fail
                    "missing \"seed\" (bench/main.exe stamps its --seed into \
                     every document)");
              match mem "rows" kvs with
              | Some (Jsonx.List rows) ->
                  if rows = [] then fail "empty \"rows\"";
                  List.iteri
                    (fun i row ->
                      match row with
                      | Jsonx.Obj r -> (
                          match mem "obs" r with
                          | Some o -> (
                              match Obs.snapshot_of_json o with
                              | Ok _ -> ()
                              | Error e -> fail "row %d: bad \"obs\": %s" i e)
                          | None -> fail "row %d: no \"obs\" snapshot" i)
                      | _ -> fail "row %d is not an object" i)
                    rows;
                  Fmt.pr "%s: valid commlat-bench/1 document, %d rows, %d snapshots@."
                    path (List.length rows) (List.length snaps)
              | _ -> fail "missing \"rows\" list")
          | _ -> fail "top level is not an object")
        else (
          if snaps = [] then (
            Fmt.epr "%s: no observability snapshots found@." path;
            exit 1);
          List.iter
            (fun (label, s) ->
              (match label with Some l -> Fmt.pr "--- %s ---@." l | None -> ());
              Fmt.pr "%a@." Obs.pp_snapshot s)
            snaps)
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"JSON" ~doc:"Snapshot/benchmark JSON file.")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Validate the file as a $(b,commlat-bench/1) document (as emitted \
             by $(b,bench/main.exe --json)) instead of rendering it.")
  in
  Cmd.v
    (Cmd.info "stats" ~exits
       ~doc:
         "Render the observability snapshots stored in a benchmark JSON file \
          ($(b,bench/main.exe <exp> --json FILE)), or validate the file's \
          schema for CI. Exits 1 when no snapshots are found or validation \
          fails, 2 on unreadable/unparsable input.")
    Term.(const run $ file $ validate)

(* ---- explore ---- *)

module Sched = Commlat_sched

let explore_cmd =
  let run workload detector txns steps max_schedules no_por json_out replay_file
      seed domains =
    if domains < 1 then begin
      Fmt.epr "explore: --domains must be >= 1@.";
      exit 2
    end;
    let scheme =
      match detector with Some s -> s | None -> Protect.Forward_gk
    in
    let wl =
      match workload with
      | "abba-buggy" | "abba-fixed" ->
          let buggy = workload = "abba-buggy" in
          Ok
            {
              Sched.Workload.w_name = workload;
              w_detector = "seeded";
              w_txns = 3;
              make = (fun () -> Sched.Seeded.workload ~buggy ());
            }
      | name -> Sched.Workload.by_name ~txns ~seed name scheme
    in
    match wl with
    | Error msg ->
        Fmt.epr "explore: %s@." msg;
        exit 2
    | Ok w -> (
        match replay_file with
        | Some file ->
            (* replay a pinned/shrunk schedule instead of exploring *)
            let sched =
              read_file file |> String.split_on_char '\n'
              |> List.filter_map (fun l ->
                     match String.trim l with
                     | "" -> None
                     | l when l.[0] = '#' -> None
                     | l -> (
                         match int_of_string_opt l with
                         | Some i -> Some i
                         | None ->
                             Fmt.epr "%s: not a fiber id: %S@." file l;
                             exit 2))
            in
            let r =
              Sched.Explore.replay ~max_steps:steps ~schedule:sched
                w.Sched.Workload.make
            in
            Fmt.pr "replay of %s (%d choices): %a@." file (List.length sched)
              Sched.Scheduler.pp_status r.Sched.Scheduler.status;
            Fmt.pr "%s" (Sched.Trace.render r.Sched.Scheduler.steps);
            (match r.Sched.Scheduler.oracle_failure with
            | Some m -> Fmt.pr "oracle: %s@." m
            | None -> ());
            let failed =
              (match r.Sched.Scheduler.status with
              | Sched.Scheduler.Deadlock _ | Sched.Scheduler.Crashed _ -> true
              | _ -> false)
              || r.Sched.Scheduler.oracle_failure <> None
            in
            exit (if failed then 1 else 0)
        | None when domains > 1 ->
            let config =
              {
                Sched.Pexplore.base =
                  {
                    Sched.Explore.por = not no_por;
                    max_schedules;
                    max_steps = steps;
                  };
                domains;
                dedup = true;
              }
            in
            let obs = Obs.create ~enabled:true "explore" in
            let report =
              Sched.Pexplore.explore ~config ~obs w.Sched.Workload.make
            in
            let c = report.Sched.Pexplore.c in
            Fmt.pr
              "workload %s, detector %s, %d transactions, por=%b, %d domains@.\
               schedules: %d run, %d pruned (commutativity), %d sleep-set \
               hits, %d shrink runs@.\
               states: %d distinct canonical traces, %d dedup hits@.\
               steps: %d total, %d truncated runs; search %s@."
              w.Sched.Workload.w_name w.Sched.Workload.w_detector
              w.Sched.Workload.w_txns (not no_por) domains c.Sched.Explore.runs
              c.Sched.Explore.pruned c.Sched.Explore.sleep_hits
              c.Sched.Explore.shrink_runs report.Sched.Pexplore.states
              report.Sched.Pexplore.dedup_hits c.Sched.Explore.steps
              c.Sched.Explore.truncated
              (if report.Sched.Pexplore.exhausted then "exhausted"
               else "cut short by --max-schedules");
            (match report.Sched.Pexplore.verdict with
            | None -> Fmt.pr "verdict: ok (no counterexample)@."
            | Some f ->
                Fmt.pr
                  "verdict: counterexample (%s): %s@.\
                   schedule (shrunk %d -> %d choices): %s@.%s"
                  f.Sched.Explore.f_kind f.Sched.Explore.f_detail
                  f.Sched.Explore.f_shrunk_from
                  (List.length f.Sched.Explore.f_schedule)
                  (String.concat ","
                     (List.map string_of_int f.Sched.Explore.f_schedule))
                  f.Sched.Explore.f_trace);
            (match json_out with
            | Some path ->
                let doc =
                  Sched.Pexplore.json_of_report
                    ~workload:w.Sched.Workload.w_name
                    ~detector:w.Sched.Workload.w_detector
                    ~txns:w.Sched.Workload.w_txns ~config
                    ~obs_snapshot:(Obs.snapshot obs) report
                in
                write_out path (Jsonx.to_string doc ^ "\n")
            | None -> ());
            exit (if report.Sched.Pexplore.verdict = None then 0 else 1)
        | None ->
            let config =
              {
                Sched.Explore.por = not no_por;
                max_schedules;
                max_steps = steps;
              }
            in
            let obs = Obs.create ~enabled:true "explore" in
            let report =
              Sched.Explore.explore ~config ~obs w.Sched.Workload.make
            in
            let c = report.Sched.Explore.c in
            Fmt.pr
              "workload %s, detector %s, %d transactions, por=%b@.\
               schedules: %d run, %d pruned (commutativity), %d sleep-set \
               hits, %d shrink runs@.\
               steps: %d total, %d truncated runs; search %s@."
              w.Sched.Workload.w_name w.Sched.Workload.w_detector
              w.Sched.Workload.w_txns (not no_por) c.Sched.Explore.runs
              c.Sched.Explore.pruned c.Sched.Explore.sleep_hits
              c.Sched.Explore.shrink_runs c.Sched.Explore.steps
              c.Sched.Explore.truncated
              (if report.Sched.Explore.exhausted then "exhausted"
               else "cut short by --max-schedules");
            (match report.Sched.Explore.verdict with
            | None -> Fmt.pr "verdict: ok (no counterexample)@."
            | Some f ->
                Fmt.pr
                  "verdict: counterexample (%s): %s@.\
                   schedule (shrunk %d -> %d choices): %s@.%s"
                  f.Sched.Explore.f_kind f.Sched.Explore.f_detail
                  f.Sched.Explore.f_shrunk_from
                  (List.length f.Sched.Explore.f_schedule)
                  (String.concat ","
                     (List.map string_of_int f.Sched.Explore.f_schedule))
                  f.Sched.Explore.f_trace);
            (match json_out with
            | Some path ->
                let doc =
                  Sched.Explore.json_of_report
                    ~workload:w.Sched.Workload.w_name
                    ~detector:w.Sched.Workload.w_detector
                    ~txns:w.Sched.Workload.w_txns ~config
                    ~obs_snapshot:(Obs.snapshot obs) report
                in
                write_out path (Jsonx.to_string doc ^ "\n")
            | None -> ());
            exit (if report.Sched.Explore.verdict = None then 0 else 1))
  in
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "Workload to explore: $(b,set), $(b,kvmap), $(b,union-find), \
             $(b,delaunay) (mesh refinement with cavity claiming), \
             $(b,mixed) (two kvmaps + a set behind one composed detector), \
             or the seeded lock-order-inversion pair $(b,abba-buggy) / \
             $(b,abba-fixed).")
  in
  let txns =
    Arg.(
      value & opt int 3
      & info [ "txns" ] ~docv:"N" ~doc:"Concurrent transactions (fibers).")
  in
  let steps =
    Arg.(
      value & opt int 2000
      & info [ "steps" ] ~docv:"N"
          ~doc:"Per-run step budget (catches retry livelocks).")
  in
  let max_schedules =
    Arg.(
      value & opt int 2000
      & info [ "max-schedules" ] ~docv:"N"
          ~doc:"Total schedule budget for the search.")
  in
  let no_por =
    Arg.(
      value & flag
      & info [ "no-por" ]
          ~doc:
            "Disable commutativity (partial-order-reduction) pruning and \
             explore every branch — the ground truth the pruned search is \
             validated against.")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay one pinned schedule (one fiber id per line, $(b,#) \
             comments) instead of exploring; prints the trace and exits 1 \
             if the run deadlocks, crashes or fails the oracle.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed for the workload's deterministic operation plan.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for the search. $(b,1) (default) runs the \
             sequential explorer; $(b,N>1) work-steals schedule prefixes \
             across N domains with canonical-trace deduplication — same \
             verdicts, same explored states, wall-clock divided by the \
             available cores.")
  in
  Cmd.v
    (Cmd.info "explore" ~exits
       ~doc:
         "Systematically explore transaction interleavings of a workload \
          under a detector scheme, using the commutativity lattice to prune \
          equivalent schedules (DPOR-style). Counterexamples (deadlock, \
          crash, serializability-oracle failure) are shrunk to a minimal \
          replayable schedule. Exits 0 when no counterexample is found, 1 \
          on a counterexample, 2 on an unusable workload/detector \
          combination.")
    Term.(
      const run $ workload $ detector_arg $ txns $ steps $ max_schedules
      $ no_por $ json_file_arg $ replay $ seed $ domains)

(* ---- compile ---- *)

let compile_cmd =
  let run path json =
    let spec = load path in
    let cspec = Compile.of_spec spec in
    let conds = Compile.conditions cspec in
    let count k =
      List.length (List.filter (fun (_, ch) -> Compile.kind ch = k) conds)
    in
    Fmt.pr "%s: %d compiled conditions@." (Spec.adt spec) (List.length conds);
    List.iter
      (fun ((m1, m2), ch) -> Fmt.pr "  %-16s %-16s %s@." m1 m2 (Compile.kind ch))
      conds;
    let vnames = Compile.vfun_names cspec in
    if Array.length vnames > 0 then
      Fmt.pr "vfun table: %a@."
        Fmt.(array ~sep:(any ", ") string)
        vnames;
    Fmt.pr "static-true %d, static-false %d, fast %d, interp %d@."
      (count "static-true") (count "static-false") (count "fast")
      (count "interp");
    match json with
    | None -> ()
    | Some file ->
        let module J = Commlat_obs.Jsonx in
        let doc =
          J.Obj
            [
              ("schema", J.Str "commlat-compile/1");
              ("adt", J.Str (Spec.adt spec));
              ( "vfuns",
                J.List (Array.to_list vnames |> List.map (fun n -> J.Str n)) );
              ( "pairs",
                J.List
                  (List.map
                     (fun ((m1, m2), ch) ->
                       J.Obj
                         [
                           ("first", J.Str m1);
                           ("second", J.Str m2);
                           ("kind", J.Str (Compile.kind ch));
                         ])
                     conds) );
            ]
        in
        write_out file (J.to_string doc)
  in
  Cmd.v
    (Cmd.info "compile" ~exits
       ~doc:
         "Show how each condition of a specification compiles (static / fast \
          / interpreted) and which vfuns get table slots.")
    Term.(const run $ spec_file_arg () $ json_file_arg)

(* ---- serve / load ---- *)

(* Shared address arguments: --socket PATH (Unix domain) wins over
   --host/--port (TCP). *)
let addr_args () =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path (takes precedence over --port).")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with $(b,--port)).")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to serve/target.")
  in
  let combine socket host port =
    match (socket, port) with
    | Some p, _ -> Some (Commlat_server.Server.Unix_sock p)
    | None, Some pt -> Some (Commlat_server.Server.Tcp (host, pt))
    | None, None -> None
  in
  Term.(const combine $ socket $ host $ port)

let domains_list_arg =
  let dlist_conv =
    let parse s =
      try
        let l = String.split_on_char ',' s |> List.map int_of_string in
        if l = [] || List.exists (fun d -> d < 1) l then failwith "bad"
        else Ok l
      with _ -> Error (`Msg (Fmt.str "bad domain list %S (want e.g. 2,4)" s))
    in
    Arg.conv (parse, fun ppf l -> Fmt.(list ~sep:comma int) ppf l)
  in
  Arg.(
    value & opt dlist_conv [ 2 ]
    & info [ "domains" ] ~docv:"N[,N...]"
        ~doc:
          "Worker domain counts: a single value for $(b,serve) and \
           external-server $(b,load), a comma-separated sweep for \
           $(b,load --self-serve).")

let serve_cmd =
  let open Commlat_server in
  let run addr domains batch shards quiet adaptive level tick strengthen_above
      weaken_above cooldown =
    let domains = match domains with [ d ] -> d | _ ->
      Fmt.epr "serve: --domains takes a single value@.";
      exit 2
    in
    if adaptive && level <> None then (
      Fmt.epr "serve: --adaptive and --level are mutually exclusive@.";
      exit 2);
    let addr = Option.value addr ~default:(Server.Unix_sock "/tmp/commlat.sock") in
    let cfg =
      { Server.default_config with addr; domains; batch; nshards = shards;
        verbose = not quiet; adaptive; level; tick; strengthen_above;
        weaken_above; cooldown }
    in
    ignore (Server.run cfg)
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N"
          ~doc:"Epoch size: max requests a worker drains per group commit.")
  in
  let shards =
    Arg.(
      value & opt int Engine.default_nshards
      & info [ "shards" ] ~docv:"N" ~doc:"Detector shards per exposed ADT.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No startup banner.") in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Run the online lattice controller: watch per-epoch conflict and \
             check-cost signals and hot-swap each ADT's detector up or down \
             its commutativity chain at epoch boundaries. Mutually exclusive \
             with $(b,--level).")
  in
  let level =
    Arg.(
      value
      & opt (some string) None
      & info [ "level" ] ~docv:"NAME"
          ~doc:
            "Pin every chain that has a level NAME (precise, simple, part) \
             to it at startup. Mutually exclusive with $(b,--adaptive).")
  in
  let tick =
    Arg.(
      value & opt float Server.default_config.Server.tick
      & info [ "tick" ] ~docv:"SECONDS"
          ~doc:"Adaptive controller observation window.")
  in
  let strengthen_above =
    Arg.(
      value & opt float Server.default_config.Server.strengthen_above
      & info [ "strengthen-above" ] ~docv:"X"
          ~doc:
            "Strengthen (coarsen) when conflict checks per invocation \
             exceed X in a window.")
  in
  let weaken_above =
    Arg.(
      value & opt float Server.default_config.Server.weaken_above
      & info [ "weaken-above" ] ~docv:"X"
          ~doc:
            "Weaken (toward precise) when the refusal ratio exceeds X in a \
             window.")
  in
  let cooldown =
    Arg.(
      value & opt int Server.default_config.Server.cooldown
      & info [ "cooldown" ] ~docv:"N"
          ~doc:
            "Windows to hold after a move before strengthening again (and \
             calm windows needed to forgive a burned level).")
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Serve the protected ADTs (kvmap, set, orset, union-find, \
          flow-graph) over the length-prefixed wire protocol until a Quit \
          request arrives. Requests route to worker domains by footprint \
          shard key; each worker group-commits its epoch's transactions. \
          With $(b,--adaptive), an online controller renavigates each ADT's \
          commutativity lattice under load.")
    Term.(
      const run $ addr_args () $ domains_list_arg $ batch $ shards $ quiet
      $ adaptive $ level $ tick $ strengthen_above $ weaken_above $ cooldown)

let load_cmd =
  let open Commlat_server in
  let run addr self_serve phases adaptive server_level domains mixes rate
      duration conns keys theta burst seed json_file =
    let mixes =
      List.map
        (fun m ->
          match Load.mix_of_string m with
          | Ok m -> m
          | Error e ->
              Fmt.epr "load: %s@." e;
              exit 2)
        mixes
    in
    if (adaptive || server_level <> None) && not self_serve then (
      Fmt.epr "load: --adaptive/--level need --self-serve@.";
      exit 2);
    if adaptive && server_level <> None then (
      Fmt.epr "load: --adaptive and --level are mutually exclusive@.";
      exit 2);
    let extra_args =
      (if adaptive then [ "--adaptive" ] else [])
      @ match server_level with Some l -> [ "--level"; l ] | None -> []
    in
    let cfg_of mix =
      { Load.default_config with conns; rate; duration; keys; theta; seed;
        mix; burst }
    in
    let failed = ref false in
    let rows = ref [] in
    let report ~domains name (r : Load.result) =
      Fmt.pr
        "%-14s %d domains: %6d/%d ok (%d errors), %8.0f req/s, p50 %.3fms \
         p99 %.3fms p999 %.3fms@."
        name domains r.Load.completed r.Load.sent r.Load.errors
        (float_of_int r.Load.completed /. r.Load.elapsed)
        (float_of_int (Commlat_obs.Histo.quantile r.Load.hist 0.5) *. 1e-6)
        (float_of_int (Commlat_obs.Histo.quantile r.Load.hist 0.99) *. 1e-6)
        (float_of_int (Commlat_obs.Histo.quantile r.Load.hist 0.999) *. 1e-6);
      if r.Load.completed = 0 then failed := true
    in
    let check_status = function
      | Unix.WEXITED 0 -> ()
      | _ ->
          Fmt.epr "load: server exited abnormally@.";
          failed := true
    in
    let phase_rows ~domains prs =
      List.iter
        (fun (p, r) ->
          report ~domains ("phase:" ^ p.Load.p_name) r;
          let cfg =
            { (cfg_of p.Load.p_mix) with
              Load.theta = p.Load.p_theta; keys = p.Load.p_keys;
              duration = p.Load.p_duration; burst = p.Load.p_burst }
          in
          let row =
            match Load.row_json ~cfg ~domains r with
            | Jsonx.Obj fields ->
                Jsonx.Obj (("phase", Jsonx.Str p.Load.p_name) :: fields)
            | j -> j
          in
          rows := row :: !rows)
        prs
    in
    (if self_serve then
       let exe = Sys.executable_name in
       List.iter
         (fun d ->
           if phases then (
             let r, status =
               Load.with_server ~exe ~domains:d ~extra_args (fun addr ->
                   Load.run_phases
                     { (cfg_of Load.Put) with Load.addr }
                     (Load.default_phases ~duration ()))
             in
             check_status status;
             phase_rows ~domains:d r)
           else
             List.iter
               (fun mix ->
                 let cfg = cfg_of mix in
                 let r, status =
                   Load.with_server ~exe ~domains:d ~extra_args (fun addr ->
                       Load.run { cfg with addr })
                 in
                 check_status status;
                 report ~domains:d (Load.mix_name mix) r;
                 rows := Load.row_json ~cfg ~domains:d r :: !rows)
               mixes)
         domains
     else
       let addr =
         match addr with
         | Some a -> a
         | None ->
             Fmt.epr
               "load: need --socket or --port (or --self-serve to spawn the \
                server)@.";
             exit 2
       in
       let d = match domains with [ d ] -> d | _ ->
         Fmt.epr "load: --domains takes a single value without --self-serve@.";
         exit 2
       in
       if phases then
         phase_rows ~domains:d
           (Load.run_phases
              { (cfg_of Load.Put) with Load.addr }
              (Load.default_phases ~duration ()))
       else
         List.iter
           (fun mix ->
             let cfg = { (cfg_of mix) with Load.addr } in
             let r = Load.run cfg in
             report ~domains:d (Load.mix_name mix) r;
             rows := Load.row_json ~cfg ~domains:d r :: !rows)
           mixes);
    (match json_file with
    | None -> ()
    | Some file ->
        let doc =
          Jsonx.Obj
            [
              ("schema", Jsonx.Str "commlat-bench/1");
              ( "experiment",
                Jsonx.Str (if phases then "load-phases" else "serve") );
              ("seed", Jsonx.Int seed);
              ("scale", Jsonx.Str "default");
              ("rows", Jsonx.List (List.rev !rows));
            ]
        in
        write_out file (Jsonx.to_string doc ^ "\n"));
    if !failed then exit 1
  in
  let self_serve =
    Arg.(
      value & flag
      & info [ "self-serve" ]
          ~doc:
            "Spawn a $(b,commlat serve) child per (domain count, mix) cell \
             on a private Unix socket, and fail if any child exits nonzero.")
  in
  let phases =
    Arg.(
      value & flag
      & info [ "phases" ]
          ~doc:
            "Instead of $(b,--mixes), drive the phase-shifting sweep \
             (commuting puts, then hot-key contention, then read-heavy) \
             back to back against one server — the workload the adaptive \
             controller is built for. $(b,--duration) is per phase.")
  in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "With $(b,--self-serve): start the server with its online \
             lattice controller enabled.")
  in
  let server_level =
    Arg.(
      value
      & opt (some string) None
      & info [ "level" ] ~docv:"NAME"
          ~doc:
            "With $(b,--self-serve): pin the server's chains to lattice \
             level NAME (precise, simple, part).")
  in
  let mixes =
    Arg.(
      value
      & opt (list string) [ "read-heavy"; "write-heavy" ]
      & info [ "mixes" ] ~docv:"MIX,..."
          ~doc:
            "Workload mixes: read-heavy, write-heavy, commuting, \
             non-commuting, put.")
  in
  let rate =
    Arg.(
      value & opt float 2000.0
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Aggregate open-loop target rate (requests/second).")
  in
  let duration =
    Arg.(
      value & opt float 2.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Scheduled load per cell.")
  in
  let conns =
    Arg.(value & opt int 4 & info [ "conns" ] ~docv:"N" ~doc:"Client connections.")
  in
  let keys =
    Arg.(
      value & opt int 100_000
      & info [ "keys" ] ~docv:"N" ~doc:"Key-space size for the Zipf sampler.")
  in
  let theta =
    Arg.(
      value & opt float 0.99
      & info [ "theta" ] ~docv:"T" ~doc:"Zipf exponent (0 = uniform).")
  in
  let burst =
    Arg.(
      value & opt int 1
      & info [ "burst" ] ~docv:"N"
          ~doc:
            "Schedule arrivals in groups of $(docv) at the same instant \
             (aggregate rate unchanged). Bursts fill server epochs, which \
             is what makes transactions overlap; with $(b,--phases) each \
             phase bursts at 32 regardless.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")
  in
  Cmd.v
    (Cmd.info "load" ~exits
       ~doc:
         "Open-loop load generator for $(b,commlat serve): Zipf-skewed \
          mixes at a target rate with coordinated-omission-safe latency \
          recording (p50/p99/p999), emitting commlat-bench/1 JSON that \
          $(b,commlat stats --validate) accepts.")
    Term.(
      const run $ addr_args () $ self_serve $ phases $ adaptive $ server_level
      $ domains_list_arg $ mixes $ rate $ duration $ conns $ keys $ theta
      $ burst $ seed $ json_file_arg)

(* ---- print ---- *)

let print_cmd =
  let run path =
    let spec = load path in
    Fmt.pr "%a" Spec_lang.print_spec spec
  in
  Cmd.v
    (Cmd.info "print" ~exits ~doc:"Re-print a specification in canonical form.")
    Term.(const run $ spec_file_arg ())

let () =
  let info =
    Cmd.info "commlat" ~version:"1.0.0"
      ~doc:"Work with commutativity specifications (PLDI 2011 lattice framework)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            classify_cmd;
            matrix_cmd;
            check_cmd;
            lint_cmd;
            synth_cmd;
            order_cmd;
            compile_cmd;
            print_cmd;
            stats_cmd;
            explore_cmd;
            serve_cmd;
            load_cmd;
          ]))
