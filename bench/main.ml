(* Benchmark harness reproducing every table and figure of the paper's
   evaluation (§5).  See DESIGN.md §3 for the experiment index and §4 for
   the hardware substitutions (1-core container: conflict-detection
   overheads are measured directly; thread scaling comes from the
   bulk-synchronous simulator whose conflicts are decided by the real
   detectors).

   Usage:
     dune exec bench/main.exe                 # all experiments, default scale
     dune exec bench/main.exe -- table1       # one experiment
     dune exec bench/main.exe -- --full all   # paper-scale inputs (slow)
     dune exec bench/main.exe -- bechamel     # Bechamel microbenchmarks

   [--seed N] re-seeds every workload generator (default 42); the seed is
   stamped into --json documents and required by `commlat stats
   --validate`.  [--json FILE] and [--detector SCHEME] as before. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime
open Commlat_apps
module Obs = Commlat_obs.Obs
module Jsonx = Commlat_obs.Jsonx

let pf = Format.printf

(* Master seed for every workload generator (--seed N, default 42).  Each
   generator derives its stream with a distinct offset so changing the
   seed re-randomizes all inputs coherently without correlating them.
   The seed is stamped into every --json document ("seed") and checked by
   `commlat stats --validate`. *)
let run_seed = ref 42

(* ------------------------------------------------------------------ *)
(* Scales                                                              *)
(* ------------------------------------------------------------------ *)

type scale = {
  genrmf_a : int;
  genrmf_b : int;
  mesh_rows : int;
  mesh_cols : int;
  cluster_points : int;
  micro_ops : int;
}

let default_scale =
  {
    genrmf_a = 5;
    genrmf_b = 6;
    mesh_rows = 36;
    mesh_cols = 36;
    cluster_points = 1500;
    micro_ops = 100_000;
  }

(* Paper-scale inputs: GENRMF challenge-class network, 1000x1000 mesh,
   100k-500k points, 1M ops.  Hours on one core. *)
let full_scale =
  {
    genrmf_a = 12;
    genrmf_b = 12;
    mesh_rows = 1000;
    mesh_cols = 1000;
    cluster_points = 100_000;
    micro_ops = 1_000_000;
  }

(* ------------------------------------------------------------------ *)
(* Shared measurement helpers                                          *)
(* ------------------------------------------------------------------ *)

(* Estimated wall-clock of a simulated P-processor run: the run executed
   [total_work] cost units in [wall_s] seconds of real (serial) time; its
   virtual duration is [makespan] units. *)
let est_time (s : Executor.stats) =
  if s.Executor.total_work <= 0.0 then 0.0
  else s.Executor.wall_s *. s.Executor.makespan /. s.Executor.total_work

let header title =
  pf "@.============================================================@.";
  pf "%s@." title;
  pf "============================================================@."

(* Machine-readable output (--json FILE): every row of a table/figure is an
   object carrying the paper metrics plus the conflict detector's own
   observability snapshot under "obs", wrapped in a schema-stamped document
   that `commlat stats --validate` checks in CI. *)
let json_doc ~experiment ~full rows =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "commlat-bench/1");
      ("experiment", Jsonx.Str experiment);
      ("seed", Jsonx.Int !run_seed);
      ("scale", Jsonx.Str (if full then "full" else "default"));
      ("rows", Jsonx.List rows);
    ]

(* ------------------------------------------------------------------ *)
(* Application plumbing                                                *)
(* ------------------------------------------------------------------ *)

(* The paper's three preflow-push variants: [ml] is memory-level detection
   (the paper notes the rw-lock scheme "is identical to the conflict
   detection performed by a transactional memory"; we realize it with the
   instrumented STM baseline so its higher bookkeeping overhead is also
   reproduced), [ex] strengthens reads to exclusive locks, [part] uses
   32-partition lock coarsening. *)
let preflow_variants =
  [
    ( "part",
      fun (p : Preflow_push.problem) ->
        Protect.protect
          ~spec:(Flow_graph.spec_partitioned ~nparts:32 ~n:p.Preflow_push.n ())
          ~adt:(Protect.adt ()) Protect.Abstract_lock );
    ( "ex",
      fun (_p : Preflow_push.problem) ->
        Protect.protect
          ~spec:(Flow_graph.spec_exclusive ())
          ~adt:(Protect.adt ()) Protect.Abstract_lock );
    ( "ml",
      fun (p : Preflow_push.problem) ->
        Protect.protect
          ~spec:(Flow_graph.spec_exclusive ())
          ~adt:(Protect.adt ~connect_tracer:(Flow_graph.set_tracer p.Preflow_push.g) ())
          Protect.Stm );
  ]

let preflow_input scale =
  Genrmf.generate ~seed:!run_seed ~a:scale.genrmf_a ~b:scale.genrmf_b ()

let preflow_run ?(processors = 4) inp variant_det =
  let p = Preflow_push.of_genrmf inp in
  let det = variant_det p in
  let flow, stats = Preflow_push.run ~processors ~detector:det p in
  (flow, stats, det.Detector.snapshot ())

let preflow_profile inp variant_det =
  let p = Preflow_push.of_genrmf inp in
  let det = variant_det p in
  let prof = Preflow_push.profile ~detector:det p in
  (prof, det.Detector.snapshot ())

let boruvka_mk_detector t variant =
  let adt =
    Protect.adt
      ~hooks:(Union_find.hooks t.Boruvka.uf)
      ~connect_tracer:(Union_find.set_tracer t.Boruvka.uf)
      ()
  in
  match variant with
  | `Gk -> Protect.protect ~spec:(Union_find.spec ()) ~adt Protect.General_gk
  | `Ml -> Protect.protect ~spec:(Union_find.spec ()) ~adt Protect.Stm
  | `None -> Detector.none

let boruvka_run ?(processors = 4) mesh variant =
  let t = Boruvka.create ~mesh () in
  let det = boruvka_mk_detector t variant in
  let full = Boruvka.full_detector t det in
  let stats =
    Executor.run_rounds ~processors ~detector:full
      ~operator:(Boruvka.operator t det)
      (List.init mesh.Mesh.nodes Fun.id)
  in
  (t, stats, full.Detector.snapshot ())

let boruvka_profile mesh variant =
  let t = Boruvka.create ~mesh () in
  let det = boruvka_mk_detector t variant in
  let full = Boruvka.full_detector t det in
  let prof =
    Parameter.profile ~detector:full
      ~operator:(Boruvka.operator t det)
      (List.init mesh.Mesh.nodes Fun.id)
  in
  (prof, full.Detector.snapshot ())

let clustering_mk_detector t variant =
  let adt =
    Protect.adt
      ~hooks:(Kdtree.hooks t.Clustering.tree)
      ~connect_tracer:(Kdtree.set_tracer t.Clustering.tree)
      ()
  in
  match variant with
  | `Gk -> Protect.protect ~spec:(Kdtree.spec ()) ~adt Protect.Forward_gk
  | `Ml -> Protect.protect ~spec:(Kdtree.spec ()) ~adt Protect.Stm
  | `None -> Detector.none

let clustering_run ?(processors = 4) pts variant =
  let t = Clustering.create ~dims:2 () in
  Clustering.load t pts;
  let det = clustering_mk_detector t variant in
  let stats =
    Executor.run_rounds ~processors ~detector:det
      ~operator:(Clustering.operator t det) (Array.to_list pts)
  in
  (t, stats, det.Detector.snapshot ())

let clustering_profile pts variant =
  let t = Clustering.create ~dims:2 () in
  Clustering.load t pts;
  let det = clustering_mk_detector t variant in
  let prof =
    Parameter.profile ~detector:det ~operator:(Clustering.operator t det)
      (Array.to_list pts)
  in
  (prof, det.Detector.snapshot ())

(* ------------------------------------------------------------------ *)
(* Table 1: critical path, parallelism, overhead                       *)
(* ------------------------------------------------------------------ *)

let table1 scale =
  header
    "Table 1: critical path length, average parallelism, overhead\n\
     paper reference values --\n\
     preflow   part/ex/ml : path 2789217/51978/47558, par 25.69/1894.88/2072.52,\n\
    \                       ovh 1.14/1.80/5.62\n\
     boruvka   uf-ml/uf-gk: path 3678/3681, par 271.89/271.67, ovh 2.5/1.31\n\
     clustering kd-ml/kd-gk: path 2209/123, par 115.88/2018.15, ovh 58.76/2.32";
  pf "%-22s %-12s %-14s %-10s@." "variant" "path" "parallelism" "overhead";
  let rows = ref [] in
  let row ~variant ~(prof : Parameter.profile) ~ovh ~snap =
    pf "%-22s %-12d %-14.2f %-10.2f@." variant prof.Parameter.critical_path
      prof.Parameter.parallelism ovh;
    let total = prof.Parameter.total_iterations + prof.Parameter.aborted in
    rows :=
      Jsonx.Obj
        [
          ("variant", Jsonx.Str variant);
          ("path_length", Jsonx.Int prof.Parameter.critical_path);
          ("parallelism", Jsonx.Float prof.Parameter.parallelism);
          ("overhead", Jsonx.Float ovh);
          ( "abort_ratio",
            Jsonx.Float (float_of_int prof.Parameter.aborted /. float_of_int (max 1 total))
          );
          ("obs", Obs.snapshot_to_json snap);
        ]
      :: !rows
  in
  (* --- preflow-push --- *)
  let inp = preflow_input scale in
  let median f = Stats.time_median ~reps:3 f in
  let seq_time =
    median (fun () ->
        let p = Preflow_push.of_genrmf inp in
        ignore (Preflow_push.run ~processors:1 ~detector:Detector.none p))
  in
  List.iter
    (fun (name, mk) ->
      let prof, snap = preflow_profile inp mk in
      let t1 = median (fun () -> ignore (preflow_run ~processors:1 inp mk)) in
      row ~variant:("preflow-" ^ name) ~prof ~ovh:(t1 /. seq_time) ~snap)
    preflow_variants;
  (* --- boruvka --- *)
  let mesh = Mesh.generate ~seed:(!run_seed + 7) ~rows:scale.mesh_rows ~cols:scale.mesh_cols () in
  let seq_time =
    median (fun () -> ignore (boruvka_run ~processors:1 mesh `None))
  in
  List.iter
    (fun (name, v) ->
      let prof, snap = boruvka_profile mesh v in
      let t1 = median (fun () -> ignore (boruvka_run ~processors:1 mesh v)) in
      row ~variant:("boruvka-" ^ name) ~prof ~ovh:(t1 /. seq_time) ~snap)
    [ ("uf-ml", `Ml); ("uf-gk", `Gk) ];
  (* --- clustering --- *)
  let pts = Point.random_cloud ~seed:(!run_seed + 31) ~dim:2 scale.cluster_points in
  let seq_time =
    median (fun () -> ignore (clustering_run ~processors:1 pts `None))
  in
  List.iter
    (fun (name, v) ->
      let prof, snap = clustering_profile pts v in
      let t1 = median (fun () -> ignore (clustering_run ~processors:1 pts v)) in
      row ~variant:("clustering-" ^ name) ~prof ~ovh:(t1 /. seq_time) ~snap)
    [ ("kd-ml", `Ml); ("kd-gk", `Gk) ];
  json_doc ~experiment:"table1" ~full:(scale == full_scale) (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Table 2: set microbenchmark                                         *)
(* ------------------------------------------------------------------ *)

let table2 scale =
  header
    "Table 2: 4-thread set microbenchmark\n\
     paper reference values --\n\
     distinct: aborts 48.68/0/0/0 %, times 4.644/1.097/1.365/1.191 s\n\
     repeats : aborts 44.07/1.53/0.09/0 %, times 3.935/1.538/0.818/0.697 s\n\
     (order: global lock, excl abs lock, rw abs lock, gatekeeper)";
  let rows = ref [] in
  List.iter
    (fun (label, classes) ->
      pf "--- input: %s (%d ops) ---@." label scale.micro_ops;
      pf "%-16s %-12s %-14s %-12s@." "scheme" "abort %" "est 4T time(s)" "wall(s)";
      List.iter
        (fun s ->
          let r = Set_micro.run ~seed:!run_seed ~threads:4 ~classes ~n:scale.micro_ops s in
          let st = r.Set_micro.stats in
          pf "%-16s %-12.2f %-14.4f %-12.4f@." (Set_micro.scheme_name s)
            r.Set_micro.abort_pct (est_time st) r.Set_micro.wall_s;
          rows :=
            Jsonx.Obj
              [
                ("input", Jsonx.Str label);
                ("scheme", Jsonx.Str (Set_micro.scheme_name s));
                ("abort_pct", Jsonx.Float r.Set_micro.abort_pct);
                ("est_time_s", Jsonx.Float (est_time st));
                ("wall_s", Jsonx.Float r.Set_micro.wall_s);
                ("parallelism", Jsonx.Float (Executor.parallelism st));
                ("rounds", Jsonx.Int (Executor.rounds_exn st));
                ("committed", Jsonx.Int st.Executor.committed);
                ("aborted", Jsonx.Int st.Executor.aborted);
                ("obs", Obs.snapshot_to_json r.Set_micro.snapshot);
              ]
            :: !rows)
        Set_micro.all_schemes)
    [ ("distinct elements", 0); ("10 equivalence classes", 10) ];
  json_doc ~experiment:"table2" ~full:(scale == full_scale) (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Figures 10-12: runtime vs thread count                              *)
(* ------------------------------------------------------------------ *)

let threads_sweep = [ 1; 2; 4; 8 ]

let fig10 scale =
  header
    "Figure 10: preflow-push estimated runtime (s) vs threads\n\
     (paper: run time inversely correlated with precision -- part < ex < ml)";
  let inp = preflow_input scale in
  let rows = ref [] in
  pf "%-10s" "threads";
  List.iter (fun (n, _) -> pf " %-12s" n) preflow_variants;
  pf "@.";
  List.iter
    (fun p ->
      pf "%-10d" p;
      List.iter
        (fun (name, mk) ->
          let _, s, snap = preflow_run ~processors:p inp mk in
          pf " %-12.4f" (est_time s);
          rows :=
            Jsonx.Obj
              [
                ("figure", Jsonx.Str "fig10");
                ("threads", Jsonx.Int p);
                ("variant", Jsonx.Str ("preflow-" ^ name));
                ("est_time_s", Jsonx.Float (est_time s));
                ("abort_ratio", Jsonx.Float (Executor.abort_ratio s));
                ("obs", Obs.snapshot_to_json snap);
              ]
            :: !rows)
        preflow_variants;
      pf "@.")
    threads_sweep;
  List.rev !rows

let fig11 scale =
  header
    "Figure 11: agglomerative clustering estimated runtime (s) vs threads\n\
     (paper: the forward gatekeeper beats the memory-level baseline and scales)";
  let pts = Point.random_cloud ~seed:(!run_seed + 77) ~dim:2 scale.cluster_points in
  let median f = Stats.time_median ~reps:3 f in
  let seq = median (fun () -> ignore (clustering_run ~processors:1 pts `None)) in
  pf "sequential time: %.4fs@." seq;
  pf "%-10s %-12s %-12s@." "threads" "kd-gk" "kd-ml";
  let rows = ref [] in
  let row p variant s snap =
    rows :=
      Jsonx.Obj
        [
          ("figure", Jsonx.Str "fig11");
          ("threads", Jsonx.Int p);
          ("variant", Jsonx.Str variant);
          ("est_time_s", Jsonx.Float (est_time s));
          ("abort_ratio", Jsonx.Float (Executor.abort_ratio s));
          ("obs", Obs.snapshot_to_json snap);
        ]
      :: !rows
  in
  List.iter
    (fun p ->
      let _, gk, gk_snap = clustering_run ~processors:p pts `Gk in
      let _, ml, ml_snap = clustering_run ~processors:p pts `Ml in
      pf "%-10d %-12.4f %-12.4f@." p (est_time gk) (est_time ml);
      row p "kd-gk" gk gk_snap;
      row p "kd-ml" ml ml_snap)
    threads_sweep;
  List.rev !rows

let fig12 scale =
  header
    "Figure 12: Boruvka speedup vs threads (speedup = serial time / est time)\n\
     (paper: general gatekeeper outperforms the TM baseline; serial 3.7 s).\n\
     'sim' speedups include the P-dependent growth of detection work that our\n\
     serial simulator charges to the clock; 'model' speedups apply the paper's\n\
     own T*o_d/min(a_d,p) with the measured 1-thread overheads.";
  let mesh = Mesh.generate ~seed:(!run_seed + 7) ~rows:scale.mesh_rows ~cols:scale.mesh_cols () in
  let median f = Stats.time_median ~reps:3 f in
  let serial = median (fun () -> ignore (boruvka_run ~processors:1 mesh `None)) in
  let od v = median (fun () -> ignore (boruvka_run ~processors:1 mesh v)) /. serial in
  let od_gk = od `Gk and od_ml = od `Ml in
  let ad_gk = (fst (boruvka_profile mesh `Gk)).Parameter.parallelism in
  let ad_ml = (fst (boruvka_profile mesh `Ml)).Parameter.parallelism in
  pf "serial time: %.4fs   o_gk=%.2f a_gk=%.1f   o_ml=%.2f a_ml=%.1f@." serial
    od_gk ad_gk od_ml ad_ml;
  pf "%-10s %-16s %-16s %-16s %-16s@." "threads" "uf-gk sim-spdup"
    "uf-ml sim-spdup" "uf-gk model" "uf-ml model";
  let rows = ref [] in
  let row p variant s snap model_spdup =
    rows :=
      Jsonx.Obj
        [
          ("figure", Jsonx.Str "fig12");
          ("threads", Jsonx.Int p);
          ("variant", Jsonx.Str variant);
          ("sim_speedup", Jsonx.Float (serial /. est_time s));
          ("model_speedup", Jsonx.Float model_spdup);
          ("abort_ratio", Jsonx.Float (Executor.abort_ratio s));
          ("obs", Obs.snapshot_to_json snap);
        ]
      :: !rows
  in
  List.iter
    (fun p ->
      let _, gk, gk_snap = boruvka_run ~processors:p mesh `Gk in
      let _, ml, ml_snap = boruvka_run ~processors:p mesh `Ml in
      let model od ad =
        serial
        /. Stats.model_runtime ~t_seq:serial ~overhead:od ~parallelism:ad
             ~processors:p
      in
      pf "%-10d %-16.2f %-16.2f %-16.2f %-16.2f@." p
        (serial /. est_time gk)
        (serial /. est_time ml)
        (model od_gk ad_gk) (model od_ml ad_ml);
      row p "uf-gk" gk gk_snap (model od_gk ad_gk);
      row p "uf-ml" ml ml_snap (model od_ml ad_ml))
    threads_sweep;
  List.rev !rows

(* ------------------------------------------------------------------ *)
(* The §5 performance model                                            *)
(* ------------------------------------------------------------------ *)

let model scale =
  header
    "Performance model (paper §5): T*o_d/min(a_d, p) predicts the winner;\n\
     lower-overhead schemes win whenever a_d >> p";
  let inp = preflow_input scale in
  let seq_time =
    let p = Preflow_push.of_genrmf inp in
    let _, s = Preflow_push.run ~processors:1 ~detector:Detector.none p in
    s.Executor.wall_s
  in
  pf "preflow sequential T = %.4fs@." seq_time;
  pf "%-10s %-12s %-12s %-14s %-14s@." "variant" "o_d" "a_d" "model t(p=4)"
    "model t(p=8)";
  List.iter
    (fun (name, mk) ->
      let prof, _ = preflow_profile inp mk in
      let _, s1, _ = preflow_run ~processors:1 inp mk in
      let od = s1.Executor.wall_s /. seq_time in
      let ad = prof.Parameter.parallelism in
      let t p =
        Stats.model_runtime ~t_seq:seq_time ~overhead:od ~parallelism:ad
          ~processors:p
      in
      pf "%-10s %-12.2f %-12.2f %-14.4f %-14.4f@." name od ad (t 4) (t 8))
    preflow_variants

(* ------------------------------------------------------------------ *)
(* Ablation: construction choices                                      *)
(* ------------------------------------------------------------------ *)

(* A hand-specialized equivalent of the Fig. 3 read/write locking scheme,
   written the way prior work's ad hoc implementations were: a direct hash
   table of per-key reader/writer entries, no formula machinery.
   Quantifies the cost of the generic construction. *)
let specialized_rw_set_detector () =
  let locks : (int, int list ref * int list ref) Hashtbl.t = Hashtbl.create 1024 in
  let held : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let mu = Mutex.create () in
  let cell k =
    match Hashtbl.find_opt locks k with
    | Some c -> c
    | None ->
        let c = (ref [], ref []) in
        Hashtbl.add locks k c;
        c
  in
  let note txn k =
    Hashtbl.replace held txn
      (k :: Option.value ~default:[] (Hashtbl.find_opt held txn))
  in
  let release txn =
    Mutex.protect mu (fun () ->
        List.iter
          (fun k ->
            match Hashtbl.find_opt locks k with
            | None -> ()
            | Some (rs, ws) ->
                rs := List.filter (fun t -> t <> txn) !rs;
                ws := List.filter (fun t -> t <> txn) !ws)
          (Option.value ~default:[] (Hashtbl.find_opt held txn));
        Hashtbl.remove held txn)
  in
  {
    Detector.name = "specialized-rw";
    on_invoke =
      (fun inv exec ->
        Mutex.protect mu (fun () ->
            let txn = inv.Invocation.txn in
            let k = Value.to_int inv.Invocation.args.(0) in
            let rs, ws = cell k in
            let is_write = inv.Invocation.meth.Invocation.name <> "contains" in
            (match List.find_opt (fun t -> t <> txn) !ws with
            | Some w -> Detector.conflict ~txn ~with_:w "w-lock held"
            | None -> ());
            if is_write then (
              match List.find_opt (fun t -> t <> txn) !rs with
              | Some r -> Detector.conflict ~txn ~with_:r "r-lock held"
              | None -> ());
            if is_write then ws := txn :: !ws else rs := txn :: !rs;
            note txn k;
            let r = exec () in
            inv.Invocation.ret <- r;
            r));
    on_commit = release;
    on_abort = release;
    reset = (fun () -> Hashtbl.reset locks);
    snapshot = Detector.no_snapshot;
    guards = [];
  }

let ablation scale =
  header
    "Ablation: generic (interpreted) constructions vs a hand-specialized\n\
     detector, and the superfluous-mode reduction (all on the repeats input)";
  let run_micro det_name mk_det =
    let set = Iset.create () in
    let det = mk_det set in
    let ops = Set_micro.ops ~seed:!run_seed ~classes:10 scale.micro_ops in
    let stats =
      Executor.run_rounds ~processors:4 ~detector:det
        ~operator:(Set_micro.operator set det) ops
    in
    pf "%-30s wall=%-10.4f aborts=%.2f%%@." det_name stats.Executor.wall_s
      (100.0 *. Executor.abort_ratio stats)
  in
  run_micro "generic rw abs-lock" (fun _ ->
      Protect.protect ~spec:(Iset.simple_spec ()) ~adt:(Protect.adt ())
        Protect.Abstract_lock);
  run_micro "hand-specialized rw locks" (fun _ -> specialized_rw_set_detector ());
  run_micro "generic rw (no reduction)" (fun _ ->
      Protect.protect ~reduce_scheme:false ~spec:(Iset.simple_spec ())
        ~adt:(Protect.adt ()) Protect.Abstract_lock);
  run_micro "forward gatekeeper (Fig.2)" (fun set ->
      Protect.protect ~spec:(Iset.precise_spec ())
        ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
        Protect.Forward_gk);
  (* --- rollback vs versioned general gatekeeping (the paper's future-work
     question: cheaper general conflict detection) --- *)
  pf "@.general gatekeeping: undo/redo rollback vs partially-persistent       union-find@.";
  let mesh = Mesh.generate ~seed:(!run_seed + 7) ~rows:scale.mesh_rows ~cols:scale.mesh_cols () in
  let run_variant label mk procs =
    let t = Boruvka.create ~mesh () in
    let det = mk t in
    let s =
      Executor.run_rounds ~processors:procs
        ~detector:(Boruvka.full_detector t det)
        ~operator:(Boruvka.operator t det)
        (List.init mesh.Mesh.nodes Fun.id)
    in
    pf "  %-22s P=%d wall=%-9.4f est=%-9.4f aborts=%.1f%%@." label procs
      s.Executor.wall_s (est_time s)
      (100.0 *. Executor.abort_ratio s)
  in
  let run_versioned procs =
    let t, vt = Boruvka.create_versioned ~mesh () in
    let det =
      Protect.protect ~spec:(Union_find.spec ())
        ~adt:(Protect.adt ~hooks:(Union_find_versioned.hooks vt) ())
        Protect.General_gk
    in
    let s =
      Executor.run_rounds ~processors:procs
        ~detector:(Boruvka.full_detector t det)
        ~operator:(Boruvka.operator t det)
        (List.init mesh.Mesh.nodes Fun.id)
    in
    pf "  %-22s P=%d wall=%-9.4f est=%-9.4f aborts=%.1f%%@." "uf-gkv (versioned)"
      procs s.Executor.wall_s (est_time s)
      (100.0 *. Executor.abort_ratio s)
  in
  List.iter
    (fun p ->
      run_variant "uf-gk (rollback)"
        (fun t ->
          Protect.protect ~spec:(Union_find.spec ())
            ~adt:(Protect.adt ~hooks:(Union_find.hooks t.Boruvka.uf) ())
            Protect.General_gk)
        p;
      run_versioned p)
    [ 1; 4; 8 ];
  (* --- adaptive selection (paper §5 future work) --- *)
  pf "@.adaptive detector selection on the contended set workload:@.";
  let candidate scheme : Set_micro.op Adaptive.candidate =
    {
      Adaptive.name = Set_micro.scheme_name scheme;
      prepare =
        (fun () ->
          let set = Iset.create () in
          let det = Set_micro.detector_of set scheme in
          (det, Set_micro.operator set det, Set_micro.ops ~seed:!run_seed ~classes:10 (scale.micro_ops / 4)));
    }
  in
  let decision, stats =
    Adaptive.run
      ~policy:(Adaptive.Offline_sample { processors = 4; sample_size = 2048 })
      (List.map candidate Set_micro.all_schemes)
  in
  pf "  %a@." Adaptive.pp_decision decision;
  pf "  full run under the winner: wall=%.4fs aborts=%.2f%%@." stats.Executor.wall_s
    (100.0 *. Executor.abort_ratio stats)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: per-invocation detector costs             *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  header
    "Bechamel microbenchmarks: one batch of 64 committed single-op txns per\n\
     run; one test per Table-2 scheme plus the Table-1/Figure-11/12 detectors";
  let open Bechamel in
  let batch_set det_of () =
    let set = Iset.create () in
    let det = det_of set in
    for i = 0 to 63 do
      let txn = 100_000 + i in
      let inv = Invocation.make ~txn Iset.m_add [| Value.Int (i mod 8) |] in
      (try
         ignore
           (det.Detector.on_invoke inv (fun () ->
                Iset.exec set "add" inv.Invocation.args))
       with Detector.Conflict _ -> ());
      det.Detector.on_commit txn
    done
  in
  let batch_uf () =
    let uf = Union_find.create () in
    ignore (Union_find.create_elements uf 64);
    let det =
      Protect.protect ~spec:(Union_find.spec ())
        ~adt:(Protect.adt ~hooks:(Union_find.hooks uf) ())
        Protect.General_gk
    in
    for i = 0 to 30 do
      let txn = 200_000 + i in
      let inv =
        Invocation.make ~txn Union_find.m_union
          [| Value.Int (2 * i); Value.Int ((2 * i) + 1) |]
      in
      (try ignore (det.Detector.on_invoke inv (fun () -> Union_find.exec_logged uf inv))
       with Detector.Conflict _ -> ());
      det.Detector.on_commit txn
    done
  in
  let batch_kd () =
    let t = Kdtree.create ~dims:2 () in
    Array.iter (fun p -> ignore (Kdtree.add t p)) (Point.random_cloud ~seed:(!run_seed + 1) ~dim:2 256);
    let det =
      Protect.protect ~spec:(Kdtree.spec ())
        ~adt:(Protect.adt ~hooks:(Kdtree.hooks t) ())
        Protect.Forward_gk
    in
    for i = 0 to 15 do
      let txn = 300_000 + i in
      let q = [| float_of_int (i mod 4) /. 4.0; 0.5 |] in
      let inv = Invocation.make ~txn Kdtree.m_nearest [| Value.Point q |] in
      (try
         ignore
           (det.Detector.on_invoke inv (fun () -> Kdtree.exec t "nearest" inv.Invocation.args))
       with Detector.Conflict _ -> ());
      det.Detector.on_commit txn
    done
  in
  let tests =
    Test.make_grouped ~name:"commlat"
      [
        Test.make ~name:"table2-global-lock"
          (Staged.stage
             (batch_set (fun _ ->
                  Protect.protect ~spec:(Iset.exclusive_spec ())
                    ~adt:(Protect.adt ()) Protect.Global_lock)));
        Test.make ~name:"table2-abs-lock-excl"
          (Staged.stage
             (batch_set (fun _ ->
                  Protect.protect ~spec:(Iset.exclusive_spec ())
                    ~adt:(Protect.adt ()) Protect.Abstract_lock)));
        Test.make ~name:"table2-abs-lock-rw"
          (Staged.stage
             (batch_set (fun _ ->
                  Protect.protect ~spec:(Iset.simple_spec ())
                    ~adt:(Protect.adt ()) Protect.Abstract_lock)));
        Test.make ~name:"table2-gatekeeper"
          (Staged.stage
             (batch_set (fun set ->
                  Protect.protect ~spec:(Iset.precise_spec ())
                    ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
                    Protect.Forward_gk)));
        Test.make ~name:"table1-fig12-uf-general-gk" (Staged.stage batch_uf);
        Test.make ~name:"table1-fig11-kdtree-fwd-gk" (Staged.stage batch_kd);
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) ols [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some [ t ] -> pf "%-40s %12.0f ns/batch@." name t
      | _ -> pf "%-40s (no estimate)@." name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Scaling: real wall-clock speedup of the domain executor             *)
(* ------------------------------------------------------------------ *)

(* Set workloads over {!Executor.run_domains} at 1/2/4 domains:

   - [latency]: every transaction sleeps ~2ms in the operator — outside the
     detector's guard sections — before a conflict-free set insertion,
     modelling iterations dominated by waiting (I/O, service calls).
     Sleeping domains release the OS core, so the sleeps overlap even on
     this single-core container and wall-clock time drops near-linearly
     with the domain count.
   - [cpu]: the bare insertion loop.  One core time-slices the domains, so
     no speedup is possible here; the rows record that honestly (speedups
     hover around 1.0) instead of estimating a simulated figure.

   Each (workload, detector, domains) cell reports the best of [reps] runs;
   [speedup_vs_1] is relative to the same pair's 1-domain cell. *)
let filter_detectors ?detector list =
  match detector with
  | None -> list
  | Some d -> List.filter (fun (name, _) -> name = d) list

let scaling ?detector scale =
  header
    "Scaling: run_domains wall-clock speedup vs 1 domain\n\
     latency workload: 2ms sleep per transaction (overlaps across domains)\n\
     cpu workload: bare set insertions (1-core container: ~1.0x expected)";
  let reps = 3 in
  let detectors =
    [ (Protect.Abstract_lock, Iset.simple_spec); (Protect.Forward_gk, Iset.precise_spec) ]
    |> List.map (fun (scheme, spec) ->
           ( Protect.scheme_name scheme,
             fun (set : Iset.t) ->
               Protect.protect ~spec:(spec ())
                 ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
                 scheme ))
    |> filter_detectors ?detector
  in
  let run_cell ~delay ~items mk_det domains =
    let best = ref None in
    for _ = 1 to reps do
      let set = Iset.create () in
      let det = mk_det set in
      let operator det txn v =
        if delay > 0.0 then Unix.sleepf delay;
        let exec (inv : Invocation.t) = Iset.exec set "add" inv.Invocation.args in
        ignore
          (Boost.invoke det txn ~undo:(Iset.undo set) Iset.m_add
             [| Value.Int v |] exec);
        []
      in
      let stats =
        Executor.run_domains ~backoff_seed:!run_seed ~domains ~detector:det ~operator
          (List.init items Fun.id)
      in
      let snap = det.Detector.snapshot () in
      match !best with
      | Some ((s : Executor.stats), _) when s.Executor.wall_s <= stats.Executor.wall_s
        ->
          ()
      | _ -> best := Some (stats, snap)
    done;
    Option.get !best
  in
  let workloads =
    [ ("latency", 0.002, 64); ("cpu", 0.0, max 1 (scale.micro_ops / 20)) ]
  in
  pf "%-10s %-12s %-8s %-10s %-10s %-12s@." "workload" "detector" "domains"
    "wall(s)" "speedup" "parallelism";
  let rows = ref [] in
  List.iter
    (fun (wname, delay, items) ->
      List.iter
        (fun (dname, mk_det) ->
          let base = ref 0.0 in
          List.iter
            (fun domains ->
              let stats, snap = run_cell ~delay ~items mk_det domains in
              if domains = 1 then base := stats.Executor.wall_s;
              let speedup =
                if stats.Executor.wall_s > 0.0 then
                  !base /. stats.Executor.wall_s
                else 0.0
              in
              pf "%-10s %-12s %-8d %-10.4f %-10.2f %-12.2f@." wname dname
                domains stats.Executor.wall_s speedup
                (Executor.parallelism stats);
              rows :=
                Jsonx.Obj
                  [
                    ("workload", Jsonx.Str wname);
                    ("detector", Jsonx.Str dname);
                    ("domains", Jsonx.Int domains);
                    ("items", Jsonx.Int items);
                    ("wall_s", Jsonx.Float stats.Executor.wall_s);
                    ("committed", Jsonx.Int stats.Executor.committed);
                    ("aborted", Jsonx.Int stats.Executor.aborted);
                    ("parallelism", Jsonx.Float (Executor.parallelism stats));
                    ("speedup_vs_1", Jsonx.Float speedup);
                    ("obs", Obs.snapshot_to_json snap);
                  ]
                :: !rows)
            [ 1; 2; 4 ])
        detectors)
    workloads;
  json_doc ~experiment:"scaling" ~full:(scale == full_scale) (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Footprint sharding                                                  *)
(* ------------------------------------------------------------------ *)

(* Sharded vs unsharded forward gatekeeper under real domains.  Each
   transaction performs [ops_per_txn] mutations on its own disjoint key
   block, so there are no semantic conflicts and every invocation's cost is
   dominated by the active-table scan — which footprint sharding cuts from
   O(active) to O(active / nshards) (each incoming keyed invocation checks
   only its own shard plus the empty overflow shard).  On a multi-core box
   the striped per-shard guards additionally let different-key invocations
   overlap; on the 1-core container the win is the scan reduction.  Rows
   carry [speedup_vs_unsharded]: same workload and domain count, unsharded
   wall over this detector's wall. *)
let sharding ?detector scale =
  header
    "Footprint sharding: sharded vs unsharded forward gatekeeper\n\
     multi-op transactions on disjoint per-transaction key blocks:\n\
     the active-table scan is the cost, sharding divides it by nshards";
  let reps = 3 in
  let ops_per_txn = 32 in
  let ntxn = max 8 (scale.micro_ops / (8 * ops_per_txn)) in
  let schemes =
    [ Protect.Forward_gk; Protect.Sharded (Protect.Forward_gk, Protect.default_nshards) ]
    |> List.map (fun s -> (Protect.scheme_name s, s))
    |> filter_detectors ?detector
  in
  (* one cell: fresh ADT + detector, [ntxn] transactions of [ops_per_txn]
     mutations each, best wall of [reps] runs *)
  let run_cell mk domains =
    let best = ref None in
    for _ = 1 to reps do
      let det, operator = mk () in
      let stats =
        Executor.run_domains ~backoff_seed:!run_seed ~domains ~detector:det ~operator
          (List.init ntxn Fun.id)
      in
      let snap = det.Detector.snapshot () in
      (match !best with
      | Some ((s : Executor.stats), _) when s.Executor.wall_s <= stats.Executor.wall_s
        ->
          ()
      | _ -> best := Some (stats, snap));
      det.Detector.reset ()
    done;
    Option.get !best
  in
  let set_cell scheme () =
    let set = Iset.create () in
    let det =
      Protect.protect ~spec:(Iset.precise_spec ())
        ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
        scheme
    in
    let operator det txn i =
      for j = 0 to ops_per_txn - 1 do
        let v = Value.Int ((i * ops_per_txn) + j) in
        ignore
          (Boost.invoke det txn ~undo:(Iset.undo set) Iset.m_add [| v |]
             (fun (inv : Invocation.t) -> Iset.exec set "add" inv.Invocation.args))
      done;
      []
    in
    (det, operator)
  in
  let kvmap_cell scheme () =
    let m = Kvmap.create () in
    let det =
      Protect.protect ~spec:(Kvmap.precise_spec ())
        ~adt:(Protect.adt ~hooks:(Kvmap.hooks m) ())
        scheme
    in
    let operator det txn i =
      for j = 0 to ops_per_txn - 1 do
        let k = Value.Int ((i * ops_per_txn) + j) in
        ignore
          (Boost.invoke det txn ~undo:(Kvmap.undo m) Kvmap.m_put
             [| k; Value.Int i |] (fun (inv : Invocation.t) ->
               Kvmap.exec m "put" inv.Invocation.args))
      done;
      []
    in
    (det, operator)
  in
  let workloads = [ ("set", set_cell); ("kvmap", kvmap_cell) ] in
  pf "%-8s %-20s %-8s %-10s %-10s %-10s@." "workload" "detector" "domains"
    "wall(s)" "speedup" "aborts";
  let rows = ref [] in
  List.iter
    (fun (wname, cell) ->
      List.iter
        (fun domains ->
          let base = ref None in
          List.iter
            (fun (dname, scheme) ->
              let stats, snap = run_cell (cell scheme) domains in
              (match scheme with
              | Protect.Sharded _ -> ()
              | _ -> base := Some stats.Executor.wall_s);
              let speedup =
                match !base with
                | Some b when stats.Executor.wall_s > 0.0 ->
                    b /. stats.Executor.wall_s
                | _ -> 1.0
              in
              pf "%-8s %-20s %-8d %-10.4f %-10.2f %-10d@." wname dname domains
                stats.Executor.wall_s speedup stats.Executor.aborted;
              rows :=
                Jsonx.Obj
                  [
                    ("workload", Jsonx.Str wname);
                    ("detector", Jsonx.Str dname);
                    ("domains", Jsonx.Int domains);
                    ("txns", Jsonx.Int ntxn);
                    ("ops_per_txn", Jsonx.Int ops_per_txn);
                    ("wall_s", Jsonx.Float stats.Executor.wall_s);
                    ("committed", Jsonx.Int stats.Executor.committed);
                    ("aborted", Jsonx.Int stats.Executor.aborted);
                    ("speedup_vs_unsharded", Jsonx.Float speedup);
                    ("obs", Obs.snapshot_to_json snap);
                  ]
                :: !rows)
            schemes)
        [ 1; 2; 4; 8 ])
    workloads;
  json_doc ~experiment:"sharding" ~full:(scale == full_scale) (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Spec compiler microbenchmark                                        *)
(* ------------------------------------------------------------------ *)

(* Interpreter vs compiled conflict checks (ROADMAP item 3, hot-path
   compilation).  For every ordered method pair of every shipped spec,
   time the staged-interpreter path — stage [Formula.compile cond] once,
   then build an [Invocation.env] per check, which is exactly what a
   non-compiled gatekeeper pays per scan entry — against the spec
   compiler's flat closure, and measure minor-heap words allocated per
   check on both paths.

   Two properties are gated (exit 1), because they are deterministic:
   compiled and interpreter verdicts must agree on every canned
   invocation pair, and a state-free vfun-free condition's compiled path
   must allocate nothing.  The speedup is machine-dependent, so it is
   recorded in the JSON document but not gated. *)

let compile_gate_failed = ref false

let compile_bench scale =
  header
    "Spec compiler: interpreter vs compiled conflict checks\n\
     interp = staged formula + per-check Invocation.env (gatekeeper default)\n\
     compiled = Compile.condition closure (gatekeeper ~compiled:true)";
  let specs =
    [
      Iset.precise_spec ();
      Accumulator.spec ();
      Kvmap.precise_spec ();
      Kvmap.simple_spec ();
      Orset.spec ();
      Union_find.spec ();
      Kdtree.spec ();
      Flow_graph.spec_rw ();
      Flow_graph.spec_exclusive ();
      Flow_graph.spec_partitioned ~nparts:32 ~n:64 ();
    ]
  in
  (* Conditions whose zero-allocation claim is unconditional: no state
     functions (those stay interpreted) and no value functions (a vfun
     call allocates its [Value.t list] argument — the one documented
     exception, see lib/core/compile.mli). *)
  let rec vfree_formula = function
    | Formula.True | Formula.False -> true
    | Formula.Cmp (_, a, b) -> vfree_term a && vfree_term b
    | Formula.Not f -> vfree_formula f
    | Formula.And (a, b) | Formula.Or (a, b) -> vfree_formula a && vfree_formula b
  and vfree_term = function
    | Formula.Arg _ | Formula.Ret _ | Formula.Const _ -> true
    | Formula.Vfun _ | Formula.Sfun _ -> false
    | Formula.Arith (_, a, b) -> vfree_term a && vfree_term b
  in
  (* Canned invocations: a few argument shapes times a few plausible
     return values per method.  The pre-flight pass picks, per ordered
     pair, the first combination the interpreter evaluates without
     raising (wrong-typed rets raise identically on both paths, so they
     are unusable for timing but still exercised by the divergence
     check). *)
  let candidates (m : Invocation.meth) =
    let args_pool =
      [
        Array.init m.arity (fun i -> Value.Int i);
        Array.init m.arity (fun i -> Value.Int (i + 1));
        Array.make (max m.arity 1) (Value.Int 0);
      ]
    in
    let rets =
      [
        Value.Unit;
        Value.Int 0;
        Value.Int 1;
        Value.Bool true;
        Value.Bool false;
        Value.Opt None;
        Value.Opt (Some (Value.Int 0));
      ]
    in
    List.concat_map
      (fun args ->
        List.map
          (fun ret ->
            let inv = Invocation.make ~txn:0 m (Array.copy args) in
            inv.Invocation.ret <- ret;
            inv)
          rets)
      args_pool
  in
  let iters = max 50_000 (scale.micro_ops / 2) in
  (* Time and count minor words for [iters] calls of [f].  The allocation
     pass is separate from the timing passes so the boxed floats of
     [Unix.gettimeofday] don't pollute the window; the [Gc.minor_words]
     result boxes themselves contribute a constant few words, so the
     per-check verdict uses a 0.5-word threshold.  Timing takes the best
     of three passes after an explicit minor collection, so one path
     doesn't pay the GC debt the other ran up. *)
  let measure f =
    for _ = 1 to 1_000 do
      ignore (Sys.opaque_identity (f () : bool))
    done;
    Gc.minor ();
    let w0 = Gc.minor_words () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f () : bool))
    done;
    let dw = Gc.minor_words () -. w0 in
    let best = ref infinity in
    for _ = 1 to 3 do
      Gc.minor ();
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        ignore (Sys.opaque_identity (f () : bool))
      done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (!best /. float_of_int iters, dw /. float_of_int iters)
  in
  let rows = ref [] in
  pf "%-18s %-14s %-14s %-12s %9s %9s %8s %7s@." "spec" "first" "second" "kind"
    "interp-ns" "comp-ns" "speedup" "words";
  List.iter
    (fun spec ->
      let adt = Spec.adt spec in
      let o = Obs.create (Fmt.str "bench.compile:%s" adt) in
      let c_measured = Obs.counter o "pairs_measured" in
      let c_interp = Obs.counter o "pairs_interpreted" in
      let c_skipped = Obs.counter o "pairs_skipped" in
      let c_diverged = Obs.counter o "divergences" in
      let cspec = Compile.of_spec spec in
      let cands = Hashtbl.create 8 in
      List.iter
        (fun (m : Invocation.meth) -> Hashtbl.replace cands m.name (candidates m))
        (Spec.methods spec);
      let spec_rows = ref [] in
      List.iter
        (fun (((first, second) : string * string), check) ->
          let cond = Spec.cond spec ~first ~second in
          let staged = Formula.compile cond in
          (* Mirror Gatekeeper.check_env's per-check shape exactly: the
             [sfun] closure and the [Spec.vfun spec] partial application
             are built fresh per evaluation there too, so their cost is
             part of the interpreter baseline, not bench artifact. *)
          let interp i1 i2 =
            let sfun name _ _ _ = raise (Formula.Unsupported name) in
            staged (Invocation.env ~sfun ~vfun:(Spec.vfun spec) i1 i2)
          in
          (* Call the compiled closure the way a gatekeeper scan does —
             directly — rather than through [check_pure]'s dispatch: a
             partial application would route every call through the
             generic currying machinery and misprice the fast path. *)
          let compiled =
            match check with
            | Compile.Static b -> fun _ _ -> b
            | Compile.Fast f -> f
            | Compile.Interp _ ->
                fun i1 i2 -> Compile.check_pure cspec check i1 i2
          in
          let kind = Compile.kind check in
          let vfree = vfree_formula cond in
          (* Divergence gate: over every canned combination, the two paths
             must both raise or both return the same verdict. *)
          let usable = ref None in
          List.iter
            (fun i1 ->
              List.iter
                (fun i2 ->
                  let r_i = try Ok (interp i1 i2) with e -> Error e in
                  let r_c = try Ok (compiled i1 i2) with e -> Error e in
                  (match (r_i, r_c) with
                  | Ok a, Ok b when a = b -> ()
                  | Error _, Error _ -> ()
                  | _ ->
                      Obs.incr c_diverged;
                      compile_gate_failed := true;
                      pf "DIVERGENCE %s (%s,%s) on %a / %a@." adt first second
                        Invocation.pp i1 Invocation.pp i2);
                  match (r_i, !usable) with
                  | Ok _, None -> usable := Some (i1, i2)
                  | _ -> ())
                (Hashtbl.find cands second))
            (Hashtbl.find cands first);
          let row fields =
            spec_rows :=
              Jsonx.Obj
                ([
                   ("adt", Jsonx.Str adt);
                   ("first", Jsonx.Str first);
                   ("second", Jsonx.Str second);
                   ("kind", Jsonx.Str kind);
                   ("vfun_free", Jsonx.Bool vfree);
                 ]
                @ fields)
              :: !spec_rows
          in
          match (check, !usable) with
          | Compile.Interp _, _ ->
              (* state-dependent: both paths are the same staged
                 interpreter behind a detector-supplied environment —
                 nothing to compare *)
              Obs.incr c_interp;
              row [ ("measured", Jsonx.Bool false) ]
          | _, None ->
              Obs.incr c_skipped;
              pf "%-18s %-14s %-14s %-12s (no canned invocations type-check)@."
                adt first second kind;
              row [ ("measured", Jsonx.Bool false) ]
          | _, Some (i1, i2) ->
              Obs.incr c_measured;
              let t_i, w_i = measure (fun () -> interp i1 i2) in
              let t_c, w_c = measure (fun () -> compiled i1 i2) in
              let speedup = if t_c > 0.0 then t_i /. t_c else 0.0 in
              let zero_alloc = w_c < 0.5 in
              if vfree && not zero_alloc then begin
                compile_gate_failed := true;
                pf
                  "ALLOCATION %s (%s,%s): %.2f words/check on a state-free \
                   vfun-free condition@."
                  adt first second w_c
              end;
              pf "%-18s %-14s %-14s %-12s %9.1f %9.1f %7.2fx %7.2f@." adt first
                second kind (t_i *. 1e9) (t_c *. 1e9) speedup w_c;
              row
                [
                  ("measured", Jsonx.Bool true);
                  ("iters", Jsonx.Int iters);
                  ("interp_ns_per_check", Jsonx.Float (t_i *. 1e9));
                  ("compiled_ns_per_check", Jsonx.Float (t_c *. 1e9));
                  ("speedup", Jsonx.Float speedup);
                  ("interp_words_per_check", Jsonx.Float w_i);
                  ("compiled_words_per_check", Jsonx.Float w_c);
                  ("zero_alloc", Jsonx.Bool zero_alloc);
                ])
        (Compile.conditions cspec);
      let snap = Obs.snapshot o in
      rows :=
        !rows
        @ List.rev_map
            (fun r ->
              match r with
              | Jsonx.Obj kvs -> Jsonx.Obj (kvs @ [ ("obs", Obs.snapshot_to_json snap) ])
              | r -> r)
            !spec_rows)
    specs;
  (* Headline: geometric-mean and minimum speedup over the state-free
     measured pairs — the acceptance number for ROADMAP item 3. *)
  let speedups =
    List.filter_map
      (function
        | Jsonx.Obj kvs -> (
            match
              (List.assoc_opt "kind" kvs, List.assoc_opt "speedup" kvs)
            with
            | Some (Jsonx.Str ("fast" | "static-true" | "static-false")),
              Some (Jsonx.Float s)
              when s > 0.0 ->
                Some s
            | _ -> None)
        | _ -> None)
      !rows
  in
  (match speedups with
  | [] -> pf "no state-free pairs measured@."
  | l ->
      let n = float_of_int (List.length l) in
      let geo = exp (List.fold_left (fun a s -> a +. log s) 0.0 l /. n) in
      let mn = List.fold_left min infinity l in
      pf "state-free pairs: %d measured, geomean speedup %.2fx, min %.2fx@."
        (List.length l) geo mn);
  if !compile_gate_failed then
    pf "GATE FAILED: divergence or allocation on a state-free condition@.";
  json_doc ~experiment:"compile" ~full:(scale == full_scale) !rows

(* ------------------------------------------------------------------ *)
(* Serve: the service under open-loop load (DESIGN.md §11)             *)
(* ------------------------------------------------------------------ *)

module Load = Commlat_server.Load
module Histo = Commlat_obs.Histo

(* Same cells as `commlat load --self-serve`: each (domain count, mix)
   pair gets a freshly spawned `commlat serve` child on a private Unix
   socket, so what is measured is the real CLI binary over a real
   socket, not an in-process shortcut.  A nonzero server exit fails the
   run.  Default scale keeps CI-sized cells (1 s each); --full matches
   the committed BENCH_serve.json (8000 req/s, 2 s, all four mixes). *)
(* Resolve the real CLI binary next to the bench executable: the serve
   and adaptive experiments measure the shipped `commlat serve` over a
   socket, not an in-process shortcut. *)
let cli_exe () =
  let cand =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "commlat_cli.exe"))
  in
  if Sys.file_exists cand then cand
  else
    failwith
      "bench: bin/commlat_cli.exe not found next to the bench binary (run \
       `dune build` first)"

let serve_bench scale =
  header "SERVE: open-loop load, commuting vs non-commuting mixes";
  let full = scale == full_scale in
  let exe = cli_exe () in
  let rate = if full then 8000.0 else 4000.0 in
  let duration = if full then 2.0 else 1.0 in
  let mixes =
    if full then Load.all_mixes
    else [ Load.Read_heavy; Load.Commuting; Load.Non_commuting ]
  in
  let rows = ref [] in
  List.iter
    (fun domains ->
      List.iter
        (fun mix ->
          let cfg =
            {
              Load.default_config with
              Load.rate;
              duration;
              mix;
              keys = 200 (* hot key space: contention must be possible *);
              seed = !run_seed;
            }
          in
          let r, status =
            Load.with_server ~exe ~domains (fun addr ->
                Load.run { cfg with Load.addr = addr })
          in
          (match status with
          | Unix.WEXITED 0 -> ()
          | _ -> failwith "bench serve: server child exited abnormally");
          let q ql = float_of_int (Histo.quantile r.Load.hist ql) *. 1e-6 in
          pf
            "  %-13s %d domains: %5d/%-5d ok (%d errors), %6.0f req/s, p50 \
             %.3fms p99 %.3fms p999 %.3fms@."
            (Load.mix_name mix) domains r.Load.completed r.Load.sent
            r.Load.errors
            (float_of_int r.Load.completed /. r.Load.elapsed)
            (q 0.50) (q 0.99) (q 0.999);
          rows := Load.row_json ~cfg ~domains r :: !rows)
        mixes)
    [ 2; 4 ];
  json_doc ~experiment:"serve" ~full (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Adaptive: online lattice navigation (DESIGN.md §12)                 *)
(* ------------------------------------------------------------------ *)

module Sched_workload = Commlat_sched.Workload
module Sched_explore = Commlat_sched.Explore

let adaptive_gate_failed = ref false

(* Counter lookup inside an already-parsed [Stats] snapshot. *)
let snap_counter (snap : Jsonx.t option) name =
  match snap with
  | Some (Jsonx.Obj kvs) -> (
      match List.assoc_opt "counters" kvs with
      | Some (Jsonx.Obj cs) -> (
          match List.assoc_opt name cs with Some (Jsonx.Int n) -> n | _ -> 0)
      | _ -> 0)
  | _ -> 0

(* The tentpole experiment: the phase-shifting workload (commuting puts →
   hot-key contention → read-heavy) against every fixed lattice level AND
   the online controller.  Gates (CI fails on any):
     - per phase, adaptive throughput >= 0.95x the best fixed level's;
     - the controller's walk really moved both directions
       (>=1 strengthen and >=1 weaken over the run);
     - zero client-visible errors under the controller;
     - the swap-protocol explorer sweep reports zero serializability
       violations across its seeds. *)
let adaptive_bench scale =
  header "ADAPTIVE: online lattice navigation vs every fixed level";
  let full = scale == full_scale in
  let exe = cli_exe () in
  let rate = if full then 1500.0 else 1200.0 in
  let duration = if full then 1.2 else 0.8 in
  let domains = 2 in
  let base =
    { Load.default_config with Load.rate; conns = 2; seed = !run_seed }
  in
  let gate_fail fmt =
    Fmt.kstr
      (fun m ->
        adaptive_gate_failed := true;
        pf "  GATE FAILED: %s@." m)
      fmt
  in
  let fixed_names = [ "precise"; "simple"; "part" ] in
  let variants =
    List.map (fun l -> ("fixed-" ^ l, [ "--level"; l ])) fixed_names
    @ [ ("adaptive", [ "--adaptive"; "--strengthen-above"; "0.3" ]) ]
  in
  let run_variant (name, extra_args) =
    let prs, status =
      Load.with_server ~exe ~domains ~extra_args (fun addr ->
          Load.run_phases { base with Load.addr = addr }
            (Load.default_phases ~duration ()))
    in
    (match status with
    | Unix.WEXITED 0 -> ()
    | _ ->
        failwith
          (Fmt.str "bench adaptive: server child (%s) exited abnormally" name));
    let per_phase =
      List.map
        (fun ((p : Load.phase), (r : Load.result)) ->
          let tput = float_of_int r.Load.completed /. r.Load.elapsed in
          pf "  %-13s %-10s: %5d ok (%d errors), %6.0f req/s@." name
            p.Load.p_name r.Load.completed r.Load.errors tput;
          (p, r, tput))
        prs
    in
    (name, per_phase)
  in
  let results = List.map run_variant variants in
  let per_phase_of name = List.assoc name results in
  let adaptive_pp = per_phase_of "adaptive" in
  (* gate: per-phase throughput within 5% of the best fixed level *)
  List.iter
    (fun ((p : Load.phase), (_ : Load.result), at) ->
      let best =
        List.fold_left
          (fun acc l ->
            List.fold_left
              (fun acc ((q : Load.phase), _, t) ->
                if q.Load.p_name = p.Load.p_name then Float.max acc t else acc)
              acc
              (per_phase_of ("fixed-" ^ l)))
          0.0 fixed_names
      in
      pf "  phase %-10s adaptive %6.0f vs best fixed %6.0f req/s (%.2fx)@."
        p.Load.p_name at best
        (if best > 0.0 then at /. best else 1.0);
      if at < 0.95 *. best then
        gate_fail "phase %s: adaptive %.0f req/s < 0.95x best fixed %.0f"
          p.Load.p_name at best)
    adaptive_pp;
  (* gate: no client-visible errors under the controller *)
  List.iter
    (fun ((p : Load.phase), (r : Load.result), _) ->
      if r.Load.errors > 0 then
        gate_fail "phase %s: %d client errors under adaptive" p.Load.p_name
          r.Load.errors)
    adaptive_pp;
  (* gate: the lattice walk moved both directions (counters are cumulative,
     so the last phase's snapshot totals the whole run) *)
  let final_snap =
    match List.rev adaptive_pp with
    | (_, (r : Load.result), _) :: _ -> r.Load.server_obs
    | [] -> None
  in
  let strengthens = snap_counter final_snap "adaptive_strengthens" in
  let weakens = snap_counter final_snap "adaptive_weakens" in
  pf "  transitions: %d strengthens, %d weakens@." strengthens weakens;
  if strengthens < 1 then gate_fail "controller never strengthened";
  if weakens < 1 then gate_fail "controller never weakened";
  (* gate: the swap protocol itself, model-checked — every interleaving of
     transactions racing a mid-run detector flip stays serializable *)
  let seeds = if full then [ 11; 12; 13; 14 ] else [ 11; 12 ] in
  let sweep =
    List.map
      (fun seed ->
        let swaps = ref 0 in
        let w =
          match
            Sched_workload.swap_set ~txns:2 ~ops_per_txn:2 ~keys:2 ~seed
              ~on_swap:(fun () -> incr swaps)
              ()
          with
          | Ok w -> w
          | Error e -> failwith ("bench adaptive: " ^ e)
        in
        let r =
          Sched_explore.explore
            ~config:
              { Sched_explore.default_config with
                Sched_explore.max_schedules = 300 }
            w.Sched_workload.make
        in
        let violations =
          match r.Sched_explore.verdict with None -> 0 | Some _ -> 1
        in
        if violations > 0 then
          gate_fail "swap explorer: seed %d found a serializability violation"
            seed;
        (seed, r.Sched_explore.c.Sched_explore.runs, !swaps, violations))
      seeds
  in
  let sum f = List.fold_left (fun a x -> a + f x) 0 sweep in
  pf "  swap explorer: %d schedules, %d swaps, %d violations@."
    (sum (fun (_, r, _, _) -> r))
    (sum (fun (_, _, s, _) -> s))
    (sum (fun (_, _, _, v) -> v));
  let rows =
    List.concat_map
      (fun (name, per_phase) ->
        List.map
          (fun ((p : Load.phase), r, _) ->
            let cfg =
              {
                base with
                Load.mix = p.Load.p_mix;
                theta = p.Load.p_theta;
                keys = p.Load.p_keys;
                duration = p.Load.p_duration;
                burst = p.Load.p_burst;
              }
            in
            match Load.row_json ~cfg ~domains r with
            | Jsonx.Obj fields ->
                Jsonx.Obj
                  (("variant", Jsonx.Str name)
                  :: ("phase", Jsonx.Str p.Load.p_name)
                  :: fields)
            | j -> j)
          per_phase)
      results
  in
  let swap_explorer_json =
    Jsonx.Obj
      [
        ("schedules", Jsonx.Int (sum (fun (_, r, _, _) -> r)));
        ("swaps", Jsonx.Int (sum (fun (_, _, s, _) -> s)));
        ("violations", Jsonx.Int (sum (fun (_, _, _, v) -> v)));
        ( "per_seed",
          Jsonx.List
            (List.map
               (fun (seed, runs, swaps, violations) ->
                 Jsonx.Obj
                   [
                     ("seed", Jsonx.Int seed);
                     ("schedules", Jsonx.Int runs);
                     ("swaps", Jsonx.Int swaps);
                     ("violations", Jsonx.Int violations);
                   ])
               sweep) );
      ]
  in
  match json_doc ~experiment:"adaptive" ~full rows with
  | Jsonx.Obj fields ->
      Jsonx.Obj
        (fields
        @ [
            ("swap_explorer", swap_explorer_json);
            ( "transitions",
              Jsonx.Obj
                [
                  ("strengthens", Jsonx.Int strengthens);
                  ("weakens", Jsonx.Int weakens);
                ] );
          ])
  | j -> j

(* ------------------------------------------------------------------ *)
(* Parallel exploration benchmark (BENCH_explore.json)                 *)
(* ------------------------------------------------------------------ *)

module Sched_pexplore = Commlat_sched.Pexplore

let explore_gate_failed = ref false

(* Schedules/sec of the work-stealing explorer at 1/2/4 domains over the
   sweep workloads, with in-process correctness gates:

   - on every configuration that exhausts its schedule tree, the
     distinct-canonical-trace count ("states") and the violation verdict
     must be identical at every domain count — the search tree is a fixed
     function of the workload, so any difference is a parallelism bug;
   - on budget-cut configurations only the verdict is gated (the explored
     subset is domain-order-dependent, so run counters are reported but
     not compared);
   - the seeded ABBA deadlock must be found, shrunk, and replayable at 4
     domains.

   Speedup expectations are honest about the host: on a single-core
   container every domain count measures the same core, so schedules/sec
   is flat; the point of the gates is correctness invariance, and of the
   rates, the bookkeeping overhead of parallel mode. *)
let explore_bench scale =
  header "Parallel DPOR exploration: schedules/sec at 1/2/4 domains";
  let full = scale == full_scale in
  let gate_fail fmt =
    Fmt.kstr
      (fun m ->
        pf "GATE FAIL: %s@." m;
        explore_gate_failed := true)
      fmt
  in
  let wl name mk =
    match mk () with
    | Ok w -> (name, w)
    | Error e -> failwith ("bench explore: " ^ name ^ ": " ^ e)
  in
  (* (label, workload, schedule budget); budgets over the known tree size
     mark configurations expected to exhaust *)
  let workloads =
    [
      ( wl "uf-gen-gk-s1" (fun () ->
            Sched_workload.union_find ~txns:2 ~seed:1 Protect.General_gk),
        8000,
        true );
      ( wl "delaunay-fwd-gk-s17" (fun () ->
            Sched_workload.delaunay ~txns:2 ~points:6 ~seed:17 ~max_pts:24
              Protect.Forward_gk),
        8000,
        true );
      ( wl "delaunay-fwd-gk-s26" (fun () ->
            Sched_workload.delaunay ~txns:3 ~points:8 ~seed:26 ~max_pts:28
              Protect.Forward_gk),
        8000,
        true );
      ( wl "mixed-fwd-gk-s42" (fun () ->
            Sched_workload.mixed ~txns:3 ~ops_per_txn:2 ~keys:3 ~seed:42
              Protect.Forward_gk),
        8000,
        true );
      (* contended mixed plan: abort/retry tails blow the tree up past any
         practical budget, so this row measures throughput only *)
      ( wl "mixed-fwd-gk-s3" (fun () ->
            Sched_workload.mixed ~txns:2 ~ops_per_txn:2 ~keys:2 ~seed:3
              Protect.Forward_gk),
        (if full then 4000 else 1500),
        false );
    ]
  in
  let domain_counts = [ 1; 2; 4 ] in
  let rows = ref [] in
  List.iter
    (fun ((label, w), budget, expect_exhaust) ->
      let baseline = ref None in
      List.iter
        (fun domains ->
          let config =
            {
              Sched_pexplore.base =
                {
                  Sched_explore.default_config with
                  Sched_explore.max_schedules = budget;
                };
              domains;
              dedup = true;
            }
          in
          let obs = Obs.create ~enabled:true "explore" in
          let t0 = Unix.gettimeofday () in
          let r = Sched_pexplore.explore ~config ~obs w.Sched_workload.make in
          let dt = Unix.gettimeofday () -. t0 in
          let runs = r.Sched_pexplore.c.Sched_explore.runs in
          let violations =
            match r.Sched_pexplore.verdict with None -> 0 | Some _ -> 1
          in
          let rate = if dt > 0.0 then float_of_int runs /. dt else 0.0 in
          pf
            "  %-22s domains=%d  %5d runs  %4d states  %s  %8.0f \
             schedules/s%s@."
            label domains runs r.Sched_pexplore.states
            (if r.Sched_pexplore.exhausted then "exhausted" else "budget-cut")
            rate
            (if violations > 0 then "  VIOLATION" else "");
          if expect_exhaust && not r.Sched_pexplore.exhausted then
            gate_fail "%s: expected to exhaust within %d schedules at %d \
                       domains"
              label budget domains;
          (match !baseline with
          | None -> baseline := Some (r.Sched_pexplore.states, violations)
          | Some (states1, viol1) ->
              if r.Sched_pexplore.exhausted && expect_exhaust then begin
                if r.Sched_pexplore.states <> states1 then
                  gate_fail
                    "%s: states at %d domains = %d, expected %d (sequential)"
                    label domains r.Sched_pexplore.states states1;
                if violations <> viol1 then
                  gate_fail
                    "%s: violations at %d domains = %d, expected %d"
                    label domains violations viol1
              end
              else if violations <> viol1 then
                gate_fail "%s: verdict changed at %d domains" label domains);
          rows :=
            Jsonx.Obj
              [
                ("workload", Jsonx.Str label);
                ("detector", Jsonx.Str w.Sched_workload.w_detector);
                ("txns", Jsonx.Int w.Sched_workload.w_txns);
                ("domains", Jsonx.Int domains);
                ("schedules", Jsonx.Int runs);
                ("states", Jsonx.Int r.Sched_pexplore.states);
                ("dedup_hits", Jsonx.Int r.Sched_pexplore.dedup_hits);
                ("violations", Jsonx.Int violations);
                ("exhausted", Jsonx.Bool r.Sched_pexplore.exhausted);
                ("wall_s", Jsonx.Float dt);
                ("schedules_per_sec", Jsonx.Float rate);
                ("obs", Obs.snapshot_to_json (Obs.snapshot obs));
              ]
            :: !rows)
        domain_counts)
    workloads;
  (* the seeded ABBA deadlock under parallel search: found, shrunk,
     replayable *)
  let abba () = Commlat_sched.Seeded.workload ~buggy:true () in
  let r =
    Sched_pexplore.explore
      ~config:
        {
          Sched_pexplore.base = Sched_explore.default_config;
          domains = 4;
          dedup = true;
        }
      abba
  in
  (match r.Sched_pexplore.verdict with
  | None -> gate_fail "abba-buggy: deadlock not found at 4 domains"
  | Some f ->
      if f.Sched_explore.f_kind <> "deadlock" then
        gate_fail "abba-buggy: found %s, expected deadlock"
          f.Sched_explore.f_kind;
      let rr =
        Sched_explore.replay ~schedule:f.Sched_explore.f_schedule abba
      in
      (match rr.Commlat_sched.Scheduler.status with
      | Commlat_sched.Scheduler.Deadlock _ ->
          pf "  abba-buggy: deadlock found and shrunk to %d choices at 4 \
              domains@."
            (List.length f.Sched_explore.f_schedule)
      | _ ->
          gate_fail "abba-buggy: shrunk schedule does not replay to deadlock"));
  json_doc ~experiment:"explore" ~full (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

(* All three thread-sweep figures as one JSON document (rows carry a
   "figure" discriminator). *)
let figs scale =
  let r10 = fig10 scale and r11 = fig11 scale and r12 = fig12 scale in
  json_doc ~experiment:"figs" ~full:(scale == full_scale) (r10 @ r11 @ r12)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let scale = if full then full_scale else default_scale in
  let args = List.filter (fun a -> a <> "--full") args in
  let grab flag args =
    let rec go acc = function
      | [] -> (None, List.rev acc)
      | f :: v :: rest when f = flag -> (Some v, List.rev_append acc rest)
      | [ f ] when f = flag ->
          pf "%s needs an argument@." flag;
          exit 1
      | a :: rest -> go (a :: acc) rest
    in
    go [] args
  in
  let json_file, args = grab "--json" args in
  let seed_arg, args = grab "--seed" args in
  (match seed_arg with
  | None -> ()
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> run_seed := n
      | None ->
          pf "--seed needs an integer, got %S@." s;
          exit 1));
  let detector, args = grab "--detector" args in
  let what = match args with [] -> "all" | w :: _ -> w in
  let emit json =
    match json_file with
    | None -> ()
    | Some f ->
        let oc = open_out f in
        output_string oc (Jsonx.to_string ~indent:2 json);
        output_string oc "\n";
        close_out oc;
        pf "wrote %s@." f
  in
  let no_json name k =
    (match json_file with
    | Some _ -> pf "note: %s has no JSON output; --json ignored@." name
    | None -> ());
    k ()
  in
  let all () =
    ignore (table1 scale);
    ignore (table2 scale);
    ignore (fig10 scale);
    ignore (fig11 scale);
    ignore (fig12 scale);
    ignore (scaling ?detector scale);
    ignore (sharding ?detector scale);
    ignore (compile_bench scale);
    model scale;
    ablation scale;
    bechamel ()
  in
  match what with
  | "all" ->
      no_json "all" all;
      if !compile_gate_failed then exit 1
  | "table1" -> emit (table1 scale)
  | "table2" -> emit (table2 scale)
  | "fig10" -> emit (json_doc ~experiment:"fig10" ~full (fig10 scale))
  | "fig11" -> emit (json_doc ~experiment:"fig11" ~full (fig11 scale))
  | "fig12" -> emit (json_doc ~experiment:"fig12" ~full (fig12 scale))
  | "figs" -> emit (figs scale)
  | "scaling" -> emit (scaling ?detector scale)
  | "sharding" -> emit (sharding ?detector scale)
  | "serve" -> emit (serve_bench scale)
  | "adaptive" ->
      let doc = adaptive_bench scale in
      emit doc;
      if !adaptive_gate_failed then exit 1
  | "compile" ->
      let doc = compile_bench scale in
      emit doc;
      if !compile_gate_failed then exit 1
  | "explore" ->
      let doc = explore_bench scale in
      emit doc;
      if !explore_gate_failed then exit 1
  | "model" -> no_json "model" (fun () -> model scale)
  | "ablation" -> no_json "ablation" (fun () -> ablation scale)
  | "bechamel" -> no_json "bechamel" bechamel
  | other ->
      pf
        "unknown experiment %S; one of \
         all|table1|table2|fig10|fig11|fig12|figs|scaling|sharding|serve|adaptive|compile|explore|model|ablation|bechamel@."
        other;
      exit 1
