(* Minimum-spanning-tree demo: Boruvka's algorithm over a shared union-find
   (the paper's general-gatekeeping case study, §5).

     dune exec examples/mst_demo.exe -- [rows] [cols]

   Runs the speculative parallel Boruvka under three detectors drawn from
   the commutativity lattice, verifies each result against Kruskal, and
   shows the abort behaviour — including the paper's point that the
   general gatekeeper's rollback machinery still beats memory-level
   detection on overhead because path compression makes [find]s collide
   at the concrete level. *)

open Commlat_adts
open Commlat_runtime
open Commlat_apps

let pf = Format.printf

let () =
  let rows = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20 in
  let cols = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 20 in
  let mesh = Mesh.generate ~rows ~cols () in
  let expected = Reference.mst_weight ~n:mesh.Mesh.nodes mesh.Mesh.edges in
  pf "%dx%d mesh (%d nodes, %d edges); Kruskal MST weight = %d@.@." rows cols
    mesh.Mesh.nodes
    (Array.length mesh.Mesh.edges)
    expected;

  let run label mk_det =
    let t = Boruvka.create ~mesh () in
    let det = mk_det t in
    let stats =
      Executor.run_rounds ~processors:4
        ~detector:(Boruvka.full_detector t det)
        ~operator:(Boruvka.operator t det)
        (List.init mesh.Mesh.nodes Fun.id)
    in
    let w = Boruvka.mst_weight t.Boruvka.mst in
    pf "%-28s weight=%d %s  iterations=%d  aborts=%.1f%%  wall=%.3fs@." label w
      (if w = expected then "(= Kruskal)" else "(MISMATCH!)")
      stats.Executor.committed
      (100.0 *. Executor.abort_ratio stats)
      stats.Executor.wall_s;
    assert (w = expected)
  in

  let protect t scheme =
    Protect.protect ~spec:(Union_find.spec ())
      ~adt:
        (Protect.adt
           ~hooks:(Union_find.hooks t.Boruvka.uf)
           ~connect_tracer:(Union_find.set_tracer t.Boruvka.uf)
           ())
      scheme
  in
  run "uf-gk (general gatekeeper)" (fun t -> protect t Protect.General_gk);
  run "uf-ml (STM baseline)" (fun t -> protect t Protect.Stm);
  run "global lock (bottom of lattice)" (fun t -> protect t Protect.Global_lock);

  pf
    "@.The gatekeeper admits concurrent finds that the STM rejects (path@.\
     compression rewrites parent pointers), and its union/union condition@.\
     needs the earlier state: rep(s1,c) != loser(s1,a,b) is evaluated by@.\
     rolling the forest back (paper Fig. 5 and §3.3.2).@."
