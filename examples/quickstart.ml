(* Quickstart: the commutativity lattice in 5 minutes.

     dune exec examples/quickstart.exe

   Walks through the paper's core workflow: write a commutativity
   specification, classify it, synthesize a conflict detector for it,
   run transactions against the detector, and move down the lattice to
   trade precision for overhead. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

let pf = Format.printf

let () =
  pf "== 1. Commutativity specifications ==@.@.";
  let precise = Iset.precise_spec () in
  pf "The paper's Fig. 2 (precise set specification):@.%a@.@." Spec.pp precise;

  pf "== 2. Classification ==@.@.";
  let report spec =
    pf "  %-12s is %a@." (Spec.adt spec) Formula.pp_cls (Spec.classify spec)
  in
  report precise;
  report (Iset.simple_spec ());
  report (Accumulator.spec ());
  report (Kdtree.spec ());
  report (Union_find.spec ());
  pf
    "@.SIMPLE specs get abstract locks; ONLINE-CHECKABLE ones get forward@.\
     gatekeepers; GENERAL ones need the general gatekeeper (paper §3.4).@.@.";

  pf "== 3. Synthesizing an abstract-locking scheme (paper Fig. 8) ==@.@.";
  let scheme = Abstract_lock.construct (Accumulator.spec ()) in
  pf "Full compatibility matrix for the accumulator:@.%a@."
    (Abstract_lock.pp_matrix ~only_used:false)
    scheme;
  pf "After dropping superfluous modes (Fig. 8b):@.%a@."
    (Abstract_lock.pp_matrix ~only_used:true)
    (Abstract_lock.reduce scheme);

  pf "== 4. Running transactions through a detector ==@.@.";
  let set = Iset.create () in
  let det =
    Protect.protect ~spec:(Iset.simple_spec ()) ~adt:(Protect.adt ())
      Protect.Abstract_lock
  in
  let try_op txn name v =
    match Iset.invoke det set ~txn name (Value.Int v) with
    | r -> pf "  txn %d: %s(%d) -> %b@." txn name v r
    | exception Detector.Conflict { with_; _ } ->
        pf "  txn %d: %s(%d) -> CONFLICT with txn %d@." txn name v with_
  in
  try_op 1 "add" 42;
  try_op 2 "add" 7;
  (* same element: the rw-lock scheme conflicts *)
  try_op 2 "add" 42;
  pf "  (txn 2 would now be rolled back and retried)@.";
  det.Detector.on_commit 1;
  det.Detector.on_abort 2;
  try_op 2 "add" 42;
  det.Detector.on_commit 2;

  pf "@.== 5. The same ops under the PRECISE spec (forward gatekeeper) ==@.@.";
  let set2 = Iset.create () in
  ignore (Iset.add set2 (Value.Int 42));
  let gk =
    Protect.protect ~spec:(Iset.precise_spec ())
      ~adt:(Protect.adt ~hooks:(Iset.hooks set2) ())
      Protect.Forward_gk
  in
  let try_op txn name v =
    match Iset.invoke gk set2 ~txn name (Value.Int v) with
    | r -> pf "  txn %d: %s(%d) -> %b@." txn name v r
    | exception Detector.Conflict { with_; _ } ->
        pf "  txn %d: %s(%d) -> CONFLICT with txn %d@." txn name v with_
  in
  (* both adds return false (42 already present): they commute under
     Fig. 2, so the gatekeeper admits what the locks refused *)
  try_op 1 "add" 42;
  try_op 2 "add" 42;
  gk.Detector.on_commit 1;
  gk.Detector.on_commit 2;

  pf "@.== 6. Moving down the lattice ==@.@.";
  let fig3 = Iset.simple_spec () in
  let excl = Iset.exclusive_spec () in
  let part = Iset.partitioned_spec ~nparts:4 () in
  pf "  fig3 <= precise?      %b@." (Lattice.spec_leq fig3 precise);
  pf "  excl <= fig3?         %b@." (Lattice.spec_leq excl fig3);
  pf "  partitioned <= excl?  %b@." (Lattice.spec_leq part excl);
  pf "  precise <= fig3?      %b   (the lattice is a real order)@."
    (Lattice.spec_leq precise fig3);
  pf
    "@.Every strengthening is implementable by a cheaper scheme: precise ->@.\
     gatekeeper, fig3 -> r/w locks, excl -> exclusive locks, partitioned ->@.\
     locks on partitions (paper §4).@."
