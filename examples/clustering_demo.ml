(* Agglomerative clustering demo (the paper's forward-gatekeeping case
   study, §5).

     dune exec examples/clustering_demo.exe -- [n_points]

   Clusters a random point cloud with the kd-tree protected by (a) the
   forward gatekeeper synthesized from the Fig. 4 specification and (b) the
   memory-level STM baseline, and reports the parallelism each one
   exposes — reproducing the paper's observation that bounding-box updates
   make memory-level detection serialize semantically commuting
   operations. *)

open Commlat_adts
open Commlat_runtime
open Commlat_apps

let pf = Format.printf

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 800
  in
  let pts = Point.random_cloud ~seed:2026 ~dim:2 n in
  pf "clustering %d random points in the unit square@.@." n;

  let run label mk_det =
    let t = Clustering.create ~dims:2 () in
    Clustering.load t pts;
    let det = mk_det t in
    let prof =
      let t2 = Clustering.create ~dims:2 () in
      Clustering.load t2 pts;
      let det2 = mk_det t2 in
      Parameter.profile ~detector:det2 ~operator:(Clustering.operator t2 det2)
        (Array.to_list pts)
    in
    let stats =
      Executor.run_rounds ~processors:4 ~detector:det
        ~operator:(Clustering.operator t det) (Array.to_list pts)
    in
    pf "%-28s merges=%d  aborts(4 threads)=%.1f%%  parallelism=%.1f  critical path=%d@."
      label
      (List.length t.Clustering.dendrogram)
      (100.0 *. Executor.abort_ratio stats)
      prof.Parameter.parallelism prof.Parameter.critical_path;
    t
  in

  let protect t scheme =
    Protect.protect ~spec:(Kdtree.spec ())
      ~adt:
        (Protect.adt
           ~hooks:(Kdtree.hooks t.Clustering.tree)
           ~connect_tracer:(Kdtree.set_tracer t.Clustering.tree)
           ())
      scheme
  in
  let t = run "kd-gk (forward gatekeeper)" (fun t -> protect t Protect.Forward_gk) in
  ignore (run "kd-ml (STM baseline)" (fun t -> protect t Protect.Stm));

  pf "@.first five merges of the dendrogram (gatekeeper run):@.";
  List.iteri
    (fun i (a, b, c) ->
      if i < 5 then
        pf "  %a + %a -> %a@." Point.pp a Point.pp b Point.pp c)
    (List.rev t.Clustering.dendrogram)
