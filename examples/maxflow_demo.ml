(* Maximum-flow demo: preflow-push over a GENRMF network with conflict
   detectors drawn from three points of the commutativity lattice
   (the paper's lock-coarsening case study, §5 and §4.2).

     dune exec examples/maxflow_demo.exe -- [a] [b]

   Generates an a*a*b RMF network, runs speculative preflow-push under
   read/write node locks, exclusive node locks and 32-partition locks, and
   checks every flow value against Edmonds-Karp. *)

open Commlat_adts
open Commlat_runtime
open Commlat_apps

let pf = Format.printf

let () =
  let a = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let b = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 5 in
  let inp = Genrmf.generate ~a ~b () in
  let expected =
    Reference.max_flow ~n:inp.Genrmf.n ~source:inp.Genrmf.source
      ~sink:inp.Genrmf.sink inp.Genrmf.edges
  in
  pf "GENRMF a=%d b=%d: %d nodes, %d arcs; Edmonds-Karp max flow = %d@.@." a b
    inp.Genrmf.n
    (List.length inp.Genrmf.edges)
    expected;

  let variants =
    [
      (* all through the unified entry point: only the spec changes *)
      ( "rw node locks (ml)",
        fun _n ->
          Protect.protect ~spec:(Flow_graph.spec_rw ()) ~adt:(Protect.adt ())
            Protect.Abstract_lock );
      ( "exclusive node locks (ex)",
        fun _n ->
          Protect.protect
            ~spec:(Flow_graph.spec_exclusive ())
            ~adt:(Protect.adt ()) Protect.Abstract_lock );
      ( "32-partition locks (part)",
        fun n ->
          Protect.protect
            ~spec:(Flow_graph.spec_partitioned ~nparts:32 ~n ())
            ~adt:(Protect.adt ()) Protect.Abstract_lock );
      ( "global lock (bottom)",
        fun _n ->
          Protect.protect ~spec:(Flow_graph.spec_exclusive ())
            ~adt:(Protect.adt ()) Protect.Global_lock );
    ]
  in
  List.iter
    (fun (label, mk) ->
      let p = Preflow_push.of_genrmf inp in
      let det = mk p.Preflow_push.n in
      let flow, stats = Preflow_push.run ~processors:4 ~detector:det p in
      pf "%-28s flow=%d %s  iterations=%d  aborts=%.1f%%  rounds=%d@." label flow
        (if flow = expected then "(correct)" else "(WRONG!)")
        stats.Executor.committed
        (100.0 *. Executor.abort_ratio stats)
        (Executor.rounds_exn stats);
      assert (flow = expected))
    variants;

  pf
    "@.All three lock schemes were synthesized by the same construction@.\
     (paper §3.2) from specifications at different lattice points; the@.\
     partition spec was derived mechanically by the coarsening transform@.\
     part(a) != part(b) => a != b (paper §4.2).@."
